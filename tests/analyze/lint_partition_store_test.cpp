#include "analyze/lint_partition_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "analyze/rules.hpp"
#include "core/partition_store.hpp"
#include "mesh/deck.hpp"
#include "partition/partition.hpp"

namespace krak::analyze {
namespace {

DiagnosticReport lint_text(const std::string& text,
                           PartitionStoreFile* parsed = nullptr) {
  std::istringstream in(text);
  DiagnosticReport report;
  PartitionStoreFile file = lint_partition_store(in, report);
  if (parsed != nullptr) *parsed = std::move(file);
  return report;
}

TEST(LintPartitionStore, CleanEntryHasNoFindings) {
  PartitionStoreFile parsed;
  const DiagnosticReport report = lint_text(
      "krakpart 1\n"
      "fingerprint 00000000deadbeef\n"
      "pes 2\n"
      "method rcb\n"
      "seed 5\n"
      "cells 4\n"
      // FNV-1a of the assignment [0, 0, 1, 1].
      "checksum 4d22117f9dcb327f\n"
      "offsets 0 2 4\n"
      "part 0 0 1\n"
      "part 1 2 3\n"
      "end\n",
      &parsed);
  EXPECT_FALSE(report.has_errors()) << report.to_text();
  EXPECT_EQ(parsed.fingerprint, 0x00000000deadbeefull);
  EXPECT_EQ(parsed.pes, 2);
  EXPECT_EQ(parsed.method, "rcb");
  EXPECT_EQ(parsed.seed, 5u);
  EXPECT_EQ(parsed.assignment,
            (std::vector<std::int32_t>{0, 0, 1, 1}));
}

TEST(LintPartitionStore, WrongMagicIsFormatError) {
  const DiagnosticReport report = lint_text("krakcost 1\nend\n");
  EXPECT_TRUE(report.has_rule(rules::kPartitionStoreFormat))
      << report.to_text();
}

TEST(LintPartitionStore, NonMonotoneOffsetsAreFlagged) {
  const DiagnosticReport report = lint_text(
      "krakpart 1\n"
      "fingerprint 0000000000000001\n"
      "pes 2\n"
      "method strip\n"
      "seed 1\n"
      "cells 4\n"
      "checksum 4d22117f9dcb327f\n"
      "offsets 0 3 4\n"
      "part 0 0 1\n"
      "part 1 2 3\n"
      "end\n");
  // Offsets are internally monotone but disagree with the per-line cell
  // counts, which is the same rule.
  EXPECT_TRUE(report.has_rule(rules::kPartitionStoreOffsets))
      << report.to_text();
}

TEST(LintPartitionStore, UnassignedCellIsBoundsError) {
  const DiagnosticReport report = lint_text(
      "krakpart 1\n"
      "fingerprint 0000000000000001\n"
      "pes 2\n"
      "method strip\n"
      "seed 1\n"
      "cells 4\n"
      "checksum 4d22117f9dcb327f\n"
      "offsets 0 2 4\n"
      "part 0 0 1\n"
      "part 1 2\n"
      "end\n");
  EXPECT_TRUE(report.has_rule(rules::kPartitionStoreBounds))
      << report.to_text();
}

TEST(LintPartitionStore, CorruptedFixtureTriggersEveryStoreRule) {
  const DiagnosticReport report = lint_text(corrupted_partition_store_text());
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_rule(rules::kPartitionStoreFormat))
      << report.to_text();
  EXPECT_TRUE(report.has_rule(rules::kPartitionStoreOffsets))
      << report.to_text();
  EXPECT_TRUE(report.has_rule(rules::kPartitionStoreBounds))
      << report.to_text();
  EXPECT_TRUE(report.has_rule(rules::kPartitionStoreChecksum))
      << report.to_text();
}

TEST(LintPartitionStore, MissingFileNamesPathAndCause) {
  const std::string path = "/nonexistent/store/entry.krakpart";
  const DiagnosticReport report = lint_partition_store_file(path);
  ASSERT_TRUE(report.has_rule(rules::kPartitionStoreFormat));
  bool named = false;
  for (const Diagnostic& diagnostic : report.diagnostics()) {
    if (diagnostic.message.find(path) != std::string::npos) named = true;
  }
  EXPECT_TRUE(named) << report.to_text();
}

// The linter and the store speak the same dialect: everything
// PartitionStore::save writes must lint clean, field for field.
TEST(LintPartitionStore, StoreWrittenEntryLintsClean) {
  namespace fs = std::filesystem;
  const fs::path directory =
      fs::path(::testing::TempDir()) / "krak_lint_store_roundtrip";
  fs::remove_all(directory);

  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 16, partition::PartitionMethod::kMultilevel, 1);
  core::PartitionStore store(directory);
  core::PartitionStore::Key key;
  key.fingerprint = core::deck_fingerprint(deck);
  key.pes = 16;
  key.method = partition::PartitionMethod::kMultilevel;
  key.seed = 1;
  store.save(key, part);

  PartitionStoreFile parsed;
  const DiagnosticReport report = [&] {
    std::ifstream in(store.entry_path(key));
    DiagnosticReport r;
    parsed = lint_partition_store(in, r);
    return r;
  }();
  EXPECT_FALSE(report.has_errors()) << report.to_text();
  EXPECT_EQ(parsed.fingerprint, key.fingerprint);
  EXPECT_EQ(parsed.pes, 16);
  EXPECT_EQ(parsed.method, "multilevel");
  EXPECT_EQ(parsed.checksum, core::partition_checksum(part.assignment()));
  EXPECT_EQ(parsed.assignment, part.assignment());

  std::error_code ec;
  fs::remove_all(directory, ec);
}

}  // namespace
}  // namespace krak::analyze
