#include "analyze/lint_partition.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analyze/rules.hpp"
#include "mesh/deck.hpp"
#include "partition/partition.hpp"

namespace krak::analyze {
namespace {

/// 4x4 single-material deck whose cells are easy to partition by hand.
mesh::InputDeck make_tiny_deck() {
  std::vector<mesh::Material> materials(16, mesh::Material::kHEGas);
  return mesh::InputDeck("tiny", mesh::Grid(4, 4), std::move(materials),
                         mesh::Point{0.5, 0.5});
}

/// Consistent two-PE split of the tiny deck (left half / right half):
/// the 4-face vertical boundary has 5 ghost nodes, 1 owned locally on
/// each side and 3 owned by... the hash decides; we mirror totals.
std::vector<partition::SubdomainInfo> make_consistent_subdomains() {
  partition::SubdomainInfo pe0;
  pe0.pe = 0;
  pe0.total_cells = 8;
  pe0.cells_per_material = {8, 0, 0, 0};
  partition::NeighborBoundary b01;
  b01.neighbor = 1;
  b01.total_faces = 4;
  b01.faces_per_group = {4, 0, 0};
  b01.ghost_nodes_local = 2;
  b01.ghost_nodes_remote = 3;
  pe0.neighbors.push_back(b01);

  partition::SubdomainInfo pe1;
  pe1.pe = 1;
  pe1.total_cells = 8;
  pe1.cells_per_material = {8, 0, 0, 0};
  partition::NeighborBoundary b10;
  b10.neighbor = 0;
  b10.total_faces = 4;
  b10.faces_per_group = {4, 0, 0};
  b10.ghost_nodes_local = 3;
  b10.ghost_nodes_remote = 2;
  pe1.neighbors.push_back(b10);

  return {pe0, pe1};
}

TEST(LintSubdomains, ConsistentSplitPasses) {
  DiagnosticReport report;
  lint_subdomains(make_tiny_deck(), make_consistent_subdomains(), report);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(LintSubdomains, MaterialSumMismatchIsError) {
  auto subs = make_consistent_subdomains();
  subs[0].cells_per_material = {6, 0, 0, 0};  // sums to 6, claims 8
  DiagnosticReport report;
  lint_subdomains(make_tiny_deck(), subs, report);
  EXPECT_TRUE(report.has_rule(rules::kMaterialConservation));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintSubdomains, LostCellsAreConservationError) {
  auto subs = make_consistent_subdomains();
  subs[1].total_cells = 6;
  subs[1].cells_per_material = {6, 0, 0, 0};
  DiagnosticReport report;
  lint_subdomains(make_tiny_deck(), subs, report);
  EXPECT_TRUE(report.has_rule(rules::kCellConservation));
  EXPECT_TRUE(report.has_rule(rules::kMaterialConservation));
}

TEST(LintSubdomains, EmptySubdomainIsWarning) {
  auto subs = make_consistent_subdomains();
  subs[0].total_cells = 16;
  subs[0].cells_per_material = {16, 0, 0, 0};
  subs[1].total_cells = 0;
  subs[1].cells_per_material = {0, 0, 0, 0};
  DiagnosticReport report;
  lint_subdomains(make_tiny_deck(), subs, report);
  EXPECT_TRUE(report.has_rule(rules::kEmptySubdomain));
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(LintSubdomains, FaceGroupSumMismatchIsError) {
  auto subs = make_consistent_subdomains();
  subs[0].neighbors[0].faces_per_group = {2, 1, 0};  // sums to 3, not 4
  DiagnosticReport report;
  lint_subdomains(make_tiny_deck(), subs, report);
  EXPECT_TRUE(report.has_rule(rules::kFaceGroupSum));
}

TEST(LintSubdomains, TooFewGhostNodesIsError) {
  auto subs = make_consistent_subdomains();
  // 1 ghost node on 4 faces: below the hard ceil(f/2) = 2 bound.
  for (auto& sub : subs) {
    sub.neighbors[0].ghost_nodes_local = 1;
    sub.neighbors[0].ghost_nodes_remote = 0;
  }
  DiagnosticReport report;
  lint_subdomains(make_tiny_deck(), subs, report);
  EXPECT_TRUE(report.has_rule(rules::kGhostFace));
}

TEST(LintSubdomains, TooManyGhostNodesIsError) {
  auto subs = make_consistent_subdomains();
  // 9 ghost nodes on 4 faces: above the 2f = 8 bound.
  for (auto& sub : subs) {
    sub.neighbors[0].ghost_nodes_local = 4;
    sub.neighbors[0].ghost_nodes_remote = 5;
  }
  DiagnosticReport report;
  lint_subdomains(make_tiny_deck(), subs, report);
  EXPECT_TRUE(report.has_rule(rules::kGhostFace));
}

TEST(LintSubdomains, ClosedLoopGhostCountIsAccepted) {
  // An enclosed subdomain: f faces, f ghost nodes. Below faces+1 but
  // topologically legal, so it must NOT be flagged.
  auto subs = make_consistent_subdomains();
  for (auto& sub : subs) {
    sub.neighbors[0].ghost_nodes_local = 2;
    sub.neighbors[0].ghost_nodes_remote = 2;
  }
  DiagnosticReport report;
  lint_subdomains(make_tiny_deck(), subs, report);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(LintSubdomains, MissingMirrorBoundaryIsSymmetryError) {
  auto subs = make_consistent_subdomains();
  subs[1].neighbors.clear();
  DiagnosticReport report;
  lint_subdomains(make_tiny_deck(), subs, report);
  EXPECT_TRUE(report.has_rule(rules::kBoundarySymmetry));
}

TEST(LintSubdomains, FaceCountDisagreementIsSymmetryError) {
  auto subs = make_consistent_subdomains();
  subs[1].neighbors[0].total_faces = 3;
  subs[1].neighbors[0].faces_per_group = {3, 0, 0};
  DiagnosticReport report;
  lint_subdomains(make_tiny_deck(), subs, report);
  EXPECT_TRUE(report.has_rule(rules::kBoundarySymmetry));
}

TEST(LintSubdomains, GhostTotalDisagreementIsSymmetryError) {
  auto subs = make_consistent_subdomains();
  subs[1].neighbors[0].ghost_nodes_local = 3;
  subs[1].neighbors[0].ghost_nodes_remote = 3;  // 6 vs pe0's 5
  DiagnosticReport report;
  lint_subdomains(make_tiny_deck(), subs, report);
  EXPECT_TRUE(report.has_rule(rules::kBoundarySymmetry));
}

TEST(LintSubdomains, OverClaimedOwnershipIsSymmetryError) {
  auto subs = make_consistent_subdomains();
  // Both sides claim 4 of the 5 shared nodes: 8 > 5 owners total.
  subs[0].neighbors[0].ghost_nodes_local = 4;
  subs[0].neighbors[0].ghost_nodes_remote = 1;
  subs[1].neighbors[0].ghost_nodes_local = 4;
  subs[1].neighbors[0].ghost_nodes_remote = 1;
  DiagnosticReport report;
  lint_subdomains(make_tiny_deck(), subs, report);
  EXPECT_TRUE(report.has_rule(rules::kBoundarySymmetry));
}

TEST(LintSubdomains, ThirdPartyOwnedCornerNodesAreAccepted) {
  // The ownership split need not mirror: a corner node may be owned by
  // a third PE, so local(a->b) + local(b->a) < total is legal.
  auto subs = make_consistent_subdomains();
  subs[0].neighbors[0].ghost_nodes_local = 1;
  subs[0].neighbors[0].ghost_nodes_remote = 4;
  subs[1].neighbors[0].ghost_nodes_local = 2;
  subs[1].neighbors[0].ghost_nodes_remote = 3;
  DiagnosticReport report;
  lint_subdomains(make_tiny_deck(), subs, report);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(LintSubdomains, NegativeNeighborIsError) {
  auto subs = make_consistent_subdomains();
  subs[0].neighbors[0].neighbor = -3;
  DiagnosticReport report;
  lint_subdomains(make_tiny_deck(), subs, report);
  EXPECT_TRUE(report.has_rule(rules::kBoundarySymmetry));
}

TEST(LintPartition, RealPartitionOfStandardDeckIsClean) {
  const mesh::InputDeck deck =
      mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 16, partition::PartitionMethod::kMultilevel, 1);
  DiagnosticReport report;
  lint_partition(deck, part, report);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(LintPartition, SizeMismatchIsConservationError) {
  const mesh::InputDeck deck = make_tiny_deck();
  const partition::Partition part(2, std::vector<partition::PeId>(8, 0));
  DiagnosticReport report;
  lint_partition(deck, part, report);
  EXPECT_TRUE(report.has_rule(rules::kCellConservation));
}

}  // namespace
}  // namespace krak::analyze
