#include "analyze/lint_journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "analyze/rules.hpp"
#include "core/campaign_journal.hpp"
#include "core/validation.hpp"

namespace krak::analyze {
namespace {

namespace fs = std::filesystem;

TEST(LintJournal, CorruptedFixtureTripsEveryJournalRule) {
  std::istringstream in(corrupted_journal_text());
  DiagnosticReport report;
  const JournalFile file = lint_journal(in, report);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_rule(rules::kJournalFormat)) << report.to_text();
  EXPECT_TRUE(report.has_rule(rules::kJournalChecksum)) << report.to_text();
  EXPECT_TRUE(report.has_rule(rules::kJournalStateMachine)) << report.to_text();
  EXPECT_TRUE(report.has_rule(rules::kJournalTornTail)) << report.to_text();
  EXPECT_TRUE(file.torn_tail);
}

TEST(LintJournal, RealJournalLintsClean) {
  // A journal the production writer produced must have nothing to say.
  const fs::path path =
      fs::path(::testing::TempDir()) / "krak_lint_journal_real.krakjournal";
  fs::remove(path);
  {
    core::CampaignJournal journal(path);
    core::ValidationPoint point;
    point.problem = "small problem (16 PEs)";
    point.pes = 16;
    point.measured = 1.25;
    point.predicted = 1.5;
    journal.record_running(0xau, 1);
    journal.record_failed(0xau, 1, /*transient=*/true,
                          "deadline: 30 s exceeded");
    journal.record_running(0xau, 2);
    journal.record_done(0xau, 2, point);
    journal.record_running(0xbu, 1);
    journal.record_failed(0xbu, 1, /*transient=*/false, "rank 3 hang");
    journal.record_quarantined(0xbu, 1, "rank 3 hang");
  }
  const DiagnosticReport report = lint_journal_file(path.string());
  EXPECT_FALSE(report.has_errors()) << report.to_text();
  EXPECT_EQ(report.warning_count(), 0u) << report.to_text();

  std::ifstream in(path, std::ios::binary);
  DiagnosticReport again;
  const JournalFile file = lint_journal(in, again);
  EXPECT_EQ(file.records, 7u);
  EXPECT_EQ(file.scenarios, 2u);
  EXPECT_EQ(file.completed, 1u);
  EXPECT_EQ(file.quarantined, 1u);
  EXPECT_FALSE(file.torn_tail);
  fs::remove(path);
}

TEST(LintJournal, EmptyInputIsAFormatError) {
  std::istringstream in("");
  DiagnosticReport report;
  (void)lint_journal(in, report);
  EXPECT_TRUE(report.has_rule(rules::kJournalFormat));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintJournal, WrongMagicIsAFormatError) {
  std::istringstream in("krakpart 1\n");
  DiagnosticReport report;
  (void)lint_journal(in, report);
  EXPECT_TRUE(report.has_rule(rules::kJournalFormat));
}

TEST(LintJournal, TornTailAloneIsAWarningNotAnError) {
  // Recovery truncates a torn append cleanly, so an otherwise-valid
  // journal with one torn line must not fail a CI gate.
  std::istringstream in("krakjournal 1\nrunning 00000000000000");
  DiagnosticReport report;
  const JournalFile file = lint_journal(in, report);
  EXPECT_TRUE(file.torn_tail);
  EXPECT_FALSE(report.has_errors()) << report.to_text();
  EXPECT_EQ(report.warning_count(), 1u);
  EXPECT_TRUE(report.has_rule(rules::kJournalTornTail));
}

TEST(LintJournal, MissingFileIsAFormatError) {
  const DiagnosticReport report =
      lint_journal_file("/nonexistent/never.krakjournal");
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_rule(rules::kJournalFormat));
}

}  // namespace
}  // namespace krak::analyze
