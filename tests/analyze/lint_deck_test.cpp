#include "analyze/lint_deck.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analyze/rules.hpp"
#include "mesh/deck.hpp"

namespace krak::analyze {
namespace {

TEST(LintDeck, StandardDecksAreClean) {
  for (mesh::DeckSize size : {mesh::DeckSize::kSmall, mesh::DeckSize::kMedium,
                              mesh::DeckSize::kLarge}) {
    const mesh::InputDeck deck = mesh::make_standard_deck(size);
    DiagnosticReport report;
    lint_deck(deck, report);
    EXPECT_TRUE(report.empty()) << deck.name() << ":\n" << report.to_text();
  }
}

TEST(LintDeck, Figure2DeckIsClean) {
  DiagnosticReport report;
  lint_deck(mesh::make_figure2_deck(), report);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(LintDeck, DetonatorOutsideDomainIsError) {
  std::vector<mesh::Material> materials(16, mesh::Material::kHEGas);
  const mesh::InputDeck deck("det-out", mesh::Grid(4, 4),
                             std::move(materials), mesh::Point{40.0, 2.0});
  DiagnosticReport report;
  lint_deck(deck, report);
  EXPECT_TRUE(report.has_rule(rules::kDeckDetonator));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintDeck, NoHighExplosiveIsWarning) {
  std::vector<mesh::Material> materials(16, mesh::Material::kFoam);
  const mesh::InputDeck deck("inert", mesh::Grid(4, 4), std::move(materials),
                             mesh::Point{2.0, 2.0});
  DiagnosticReport report;
  lint_deck(deck, report);
  EXPECT_TRUE(report.has_rule(rules::kDeckDetonator));
  EXPECT_FALSE(report.has_errors());
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(LintDeck, DetonatorOnNonHECellIsWarning) {
  // HE gas exists, but the detonator sits on a foam cell.
  std::vector<mesh::Material> materials(16, mesh::Material::kFoam);
  materials[0] = mesh::Material::kHEGas;  // cell (0, 0)
  const mesh::InputDeck deck("misplaced", mesh::Grid(4, 4),
                             std::move(materials), mesh::Point{3.5, 3.5});
  DiagnosticReport report;
  lint_deck(deck, report);
  EXPECT_TRUE(report.has_rule(rules::kDeckDetonator));
  EXPECT_FALSE(report.has_errors());
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(LintDeck, DetonatorOnHECellIsClean) {
  std::vector<mesh::Material> materials(16, mesh::Material::kFoam);
  materials[0] = mesh::Material::kHEGas;  // cell (0, 0)
  const mesh::InputDeck deck("ok", mesh::Grid(4, 4), std::move(materials),
                             mesh::Point{0.5, 0.5});
  DiagnosticReport report;
  lint_deck(deck, report);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

}  // namespace
}  // namespace krak::analyze
