#include "analyze/lint_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analyze/rules.hpp"

namespace krak::analyze {
namespace {

DiagnosticReport lint_text(const std::string& text, TraceFile* parsed = nullptr) {
  std::istringstream in(text);
  DiagnosticReport report;
  TraceFile file = lint_trace(in, report);
  if (parsed != nullptr) *parsed = std::move(file);
  return report;
}

TEST(LintTrace, CleanTraceHasNoFindings) {
  TraceFile parsed;
  const DiagnosticReport report = lint_text(
      "kraktrace 1\n"
      "ranks 2\n"
      "# a matched exchange followed by a reduction\n"
      "op 0 0.0 compute\n"
      "op 0 1.0 isend peer=1 tag=3 bytes=4096\n"
      "op 1 1.5 recv peer=0 tag=3 bytes=4096\n"
      "op 0 2.0 allreduce bytes=8\n"
      "op 1 2.0 allreduce bytes=8\n"
      "end\n",
      &parsed);
  EXPECT_FALSE(report.has_errors()) << report.to_text();
  EXPECT_EQ(parsed.ranks, 2);
  EXPECT_EQ(parsed.events.size(), 5u);
  EXPECT_EQ(parsed.events[1].peer, 1);
  EXPECT_DOUBLE_EQ(parsed.events[1].bytes, 4096.0);
}

TEST(LintTrace, BackwardsTimestampIsMonotoneViolation) {
  const DiagnosticReport report = lint_text(
      "kraktrace 1\n"
      "ranks 1\n"
      "op 0 2.0 compute\n"
      "op 0 1.0 compute\n"
      "end\n");
  EXPECT_TRUE(report.has_rule(rules::kTraceMonotoneTime)) << report.to_text();
}

TEST(LintTrace, RankOutOfDeclaredBoundsIsFlagged) {
  const DiagnosticReport report = lint_text(
      "kraktrace 1\n"
      "ranks 2\n"
      "op 5 0.0 compute\n"
      "end\n");
  EXPECT_TRUE(report.has_rule(rules::kTraceRankBounds)) << report.to_text();
}

TEST(LintTrace, UnknownOpKindIsFlagged) {
  const DiagnosticReport report = lint_text(
      "kraktrace 1\n"
      "ranks 1\n"
      "op 0 0.0 teleport\n"
      "end\n");
  EXPECT_TRUE(report.has_rule(rules::kTraceOpKind)) << report.to_text();
}

TEST(LintTrace, UnmatchedSendIsFlagged) {
  const DiagnosticReport report = lint_text(
      "kraktrace 1\n"
      "ranks 2\n"
      "op 0 0.0 isend peer=1 tag=4 bytes=64\n"
      "end\n");
  EXPECT_TRUE(report.has_rule(rules::kTraceSendRecvMatch)) << report.to_text();
}

TEST(LintTrace, TruncatedFileIsFormatError) {
  const DiagnosticReport report = lint_text(
      "kraktrace 1\n"
      "ranks 1\n"
      "op 0 0.0 compute\n");  // no `end`
  EXPECT_TRUE(report.has_rule(rules::kTraceFormat)) << report.to_text();
}

TEST(LintTrace, CorruptedFixtureTriggersEveryTraceRule) {
  const DiagnosticReport report = lint_text(corrupted_trace_text());
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_rule(rules::kTraceFormat)) << report.to_text();
  EXPECT_TRUE(report.has_rule(rules::kTraceMonotoneTime)) << report.to_text();
  EXPECT_TRUE(report.has_rule(rules::kTraceRankBounds)) << report.to_text();
  EXPECT_TRUE(report.has_rule(rules::kTraceOpKind)) << report.to_text();
  EXPECT_TRUE(report.has_rule(rules::kTraceSendRecvMatch)) << report.to_text();
}

TEST(LintTrace, MissingFileNamesPathAndCause) {
  const std::string path = "/nonexistent/trace.kraktrace";
  const DiagnosticReport report = lint_trace_file(path);
  ASSERT_TRUE(report.has_rule(rules::kTraceFormat));
  bool named = false;
  for (const Diagnostic& diagnostic : report.diagnostics()) {
    if (diagnostic.message.find(path) != std::string::npos ||
        diagnostic.component.find(path) != std::string::npos) {
      named = true;
    }
  }
  EXPECT_TRUE(named) << report.to_text();
}

}  // namespace
}  // namespace krak::analyze
