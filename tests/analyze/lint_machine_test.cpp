#include "analyze/lint_machine.hpp"

#include <gtest/gtest.h>

#include "analyze/rules.hpp"
#include "network/machine.hpp"

namespace krak::analyze {
namespace {

TEST(LintMachine, Es45AtPowerOfTwoIsClean) {
  DiagnosticReport report;
  lint_machine(network::make_es45_qsnet(), 256, report);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(LintMachine, HypotheticalUpgradeIsClean) {
  DiagnosticReport report;
  lint_machine(network::make_hypothetical_upgrade(), 64, report);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(LintMachine, NonPowerOfTwoRunIsInfoOnly) {
  DiagnosticReport report;
  lint_machine(network::make_es45_qsnet(), 100, report);
  EXPECT_FALSE(report.has_errors()) << report.to_text();
  EXPECT_EQ(report.warning_count(), 0u);
  EXPECT_TRUE(report.has_rule(rules::kTreeCoverage));
  EXPECT_EQ(report.count(Severity::kInfo), 1u);
}

TEST(LintMachine, RunLargerThanMachineIsShapeError) {
  const network::MachineConfig machine = network::make_es45_qsnet();
  DiagnosticReport report;
  lint_machine(machine, machine.total_pes() + 1, report);
  EXPECT_TRUE(report.has_rule(rules::kMachineShape));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintMachine, BrokenShapeReportsEveryField) {
  network::MachineConfig machine = network::make_es45_qsnet();
  machine.nodes = 0;
  machine.pes_per_node = -4;
  machine.compute_speedup = -1.0;
  DiagnosticReport report;
  lint_machine(machine, 64, report);
  EXPECT_TRUE(report.has_rule(rules::kMachineShape));
  EXPECT_GE(report.error_count(), 3u);
}

TEST(LintMachine, WholeMachineDefaultWhenPesNotGiven) {
  // pes <= 0 means "the whole machine"; the ES-45 cluster's PE count is
  // a power of two, so no tree finding appears.
  DiagnosticReport report;
  lint_machine(network::make_es45_qsnet(), 0, report);
  EXPECT_FALSE(report.has_errors()) << report.to_text();
}

}  // namespace
}  // namespace krak::analyze
