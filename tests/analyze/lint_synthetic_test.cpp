#include "analyze/lint_synthetic.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "analyze/rules.hpp"
#include "mesh/synthetic.hpp"

namespace krak::analyze {
namespace {

namespace fs = std::filesystem;

TEST(LintSynthetic, CorruptedFixtureTripsEverySyntheticRule) {
  std::istringstream in(corrupted_synthetic_text());
  DiagnosticReport report;
  const SyntheticFile file = lint_synthetic(in, report);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_rule(rules::kSyntheticFormat)) << report.to_text();
  EXPECT_TRUE(report.has_rule(rules::kSyntheticMix)) << report.to_text();
  EXPECT_TRUE(report.has_rule(rules::kSyntheticShape)) << report.to_text();
  EXPECT_EQ(file.name, "corrupted-synthetic");
}

TEST(LintSynthetic, WriterOutputLintsClean) {
  // A spec the production writer produced must have nothing to say —
  // including the large-deck shape the 100k-rank benches use.
  std::stringstream stream;
  mesh::write_synthetic(stream, mesh::paper_synthetic_spec(1024, 128));
  DiagnosticReport report;
  const SyntheticFile file = lint_synthetic(stream, report);
  EXPECT_FALSE(report.has_errors()) << report.to_text();
  EXPECT_EQ(report.warning_count(), 0u) << report.to_text();
  EXPECT_EQ(file.name, "synthetic-1024x128");
  EXPECT_EQ(file.nx, 1024);
  EXPECT_EQ(file.ny, 128);
  EXPECT_EQ(file.layers, 4u);
  EXPECT_FALSE(file.has_detonator);  // paper placement is implied
}

TEST(LintSynthetic, EmptyInputIsAFormatError) {
  std::istringstream in("");
  DiagnosticReport report;
  (void)lint_synthetic(in, report);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_rule(rules::kSyntheticFormat));
}

TEST(LintSynthetic, WrongMagicIsAFormatError) {
  std::istringstream in("krakdeck 1\nend\n");
  DiagnosticReport report;
  (void)lint_synthetic(in, report);
  EXPECT_TRUE(report.has_rule(rules::kSyntheticFormat));
}

TEST(LintSynthetic, NamesEveryViolationInOnePass) {
  // Unlike read_synthetic (first-throw), the linter reports all of a
  // spec's problems so a hand-written file is fixable in one pass.
  std::istringstream in(
      "kraksynth 1\n"
      "grid 2 0\n"
      "layer 12 2.5\n"
      "layer 0 0.25\n"
      "layer 1 0.25\n"
      "bogus\n");
  DiagnosticReport report;
  const SyntheticFile file = lint_synthetic(in, report);
  EXPECT_TRUE(report.has_rule(rules::kSyntheticShape));  // ny == 0
  EXPECT_TRUE(report.has_rule(rules::kSyntheticMix));    // index, fraction, sum
  EXPECT_TRUE(report.has_rule(rules::kSyntheticFormat));  // bogus key, no end
  EXPECT_GE(report.error_count(), 5u) << report.to_text();
  EXPECT_EQ(file.layers, 3u);
}

TEST(LintSynthetic, MoreLayersThanColumnsIsAMixError) {
  std::istringstream in(
      "kraksynth 1\n"
      "grid 2 8\n"
      "layer 0 0.3\n"
      "layer 1 0.3\n"
      "layer 2 0.4\n"
      "end\n");
  DiagnosticReport report;
  (void)lint_synthetic(in, report);
  EXPECT_TRUE(report.has_rule(rules::kSyntheticMix)) << report.to_text();
}

TEST(LintSynthetic, DetonatorOutsideTheGridIsAShapeError) {
  std::istringstream in(
      "kraksynth 1\n"
      "grid 64 32\n"
      "layer 0 1.0\n"
      "detonator 65 8\n"
      "end\n");
  DiagnosticReport report;
  const SyntheticFile file = lint_synthetic(in, report);
  EXPECT_TRUE(report.has_rule(rules::kSyntheticShape)) << report.to_text();
  EXPECT_TRUE(file.has_detonator);
}

TEST(LintSynthetic, ContentAfterEndIsAFormatError) {
  std::istringstream in(
      "kraksynth 1\n"
      "grid 8 8\n"
      "layer 0 1.0\n"
      "end\n"
      "layer 1 1.0\n");
  DiagnosticReport report;
  (void)lint_synthetic(in, report);
  EXPECT_TRUE(report.has_rule(rules::kSyntheticFormat)) << report.to_text();
}

TEST(LintSynthetic, MissingFileIsAFormatError) {
  const DiagnosticReport report =
      lint_synthetic_file("/nonexistent/never.kraksynth");
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_rule(rules::kSyntheticFormat));
}

TEST(LintSynthetic, SavedSpecRoundTripsThroughTheFileLinter) {
  const fs::path path =
      fs::path(::testing::TempDir()) / "krak_lint_synthetic_real.kraksynth";
  fs::remove(path);
  mesh::SyntheticSpec spec = mesh::paper_synthetic_spec(512, 256);
  spec.detonator = mesh::Point{1.0, 100.0};
  mesh::save_synthetic(path.string(), spec);
  const DiagnosticReport report = lint_synthetic_file(path.string());
  EXPECT_FALSE(report.has_errors()) << report.to_text();
  fs::remove(path);
}

}  // namespace
}  // namespace krak::analyze
