#include "analyze/lint_cli.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "analyze/fixtures.hpp"
#include "mesh/deck.hpp"
#include "util/error.hpp"

namespace krak::analyze {
namespace {

util::ArgParser make_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "driver");
  return util::ArgParser(static_cast<int>(argv.size()), argv.data());
}

LintInput deck_only_input(const mesh::InputDeck& deck) {
  LintInput input;
  input.deck = &deck;
  return input;
}

TEST(LintGate, NoFlagsIsSilentProceed) {
  const mesh::InputDeck deck =
      mesh::make_standard_deck(mesh::DeckSize::kSmall);
  std::ostringstream out;
  const LintGateOutcome outcome =
      run_lint_gate(make_args({}), deck_only_input(deck), out);
  EXPECT_EQ(outcome, LintGateOutcome::kProceed);
  EXPECT_TRUE(out.str().empty());
}

TEST(LintGate, LintFlagOnCleanInputPrintsAndProceeds) {
  const mesh::InputDeck deck =
      mesh::make_standard_deck(mesh::DeckSize::kSmall);
  std::ostringstream out;
  const LintGateOutcome outcome =
      run_lint_gate(make_args({"--lint"}), deck_only_input(deck), out);
  EXPECT_EQ(outcome, LintGateOutcome::kProceed);
  EXPECT_NE(out.str().find("model lint: 0 error(s)"), std::string::npos);
}

TEST(LintGate, LintOnlyOnCleanInputExitsClean) {
  const mesh::InputDeck deck =
      mesh::make_standard_deck(mesh::DeckSize::kSmall);
  std::ostringstream out;
  const LintGateOutcome outcome =
      run_lint_gate(make_args({"--lint-only"}), deck_only_input(deck), out);
  EXPECT_EQ(outcome, LintGateOutcome::kExitClean);
  EXPECT_EQ(lint_exit_code(outcome), 0);
}

TEST(LintGate, ErrorsBlockTheRunUnderBothFlags) {
  const CorruptedFixture fixture = make_corrupted_fixture();
  for (const char* flag : {"--lint", "--lint-only"}) {
    std::ostringstream out;
    const LintGateOutcome outcome =
        run_lint_gate(make_args({flag}), deck_only_input(fixture.deck), out);
    EXPECT_EQ(outcome, LintGateOutcome::kExitError) << flag;
    EXPECT_NE(lint_exit_code(outcome), 0) << flag;
    EXPECT_NE(out.str().find("error"), std::string::npos) << flag;
  }
}

TEST(LintGate, CsvFormatEmitsCsv) {
  const mesh::InputDeck deck =
      mesh::make_standard_deck(mesh::DeckSize::kSmall);
  std::ostringstream out;
  const LintGateOutcome outcome = run_lint_gate(
      make_args({"--lint-only", "--lint-format", "csv"}),
      deck_only_input(deck), out);
  EXPECT_EQ(outcome, LintGateOutcome::kExitClean);
  EXPECT_EQ(out.str().rfind("severity,rule,component,message\n", 0), 0u);
}

TEST(LintGate, UnknownFormatIsRejected) {
  const mesh::InputDeck deck =
      mesh::make_standard_deck(mesh::DeckSize::kSmall);
  std::ostringstream out;
  EXPECT_THROW(
      static_cast<void>(run_lint_gate(
          make_args({"--lint", "--lint-format", "yaml"}),
          deck_only_input(deck), out)),
      util::InvalidArgument);
}

TEST(LintGate, ExitCodes) {
  EXPECT_EQ(lint_exit_code(LintGateOutcome::kProceed), 0);
  EXPECT_EQ(lint_exit_code(LintGateOutcome::kExitClean), 0);
  EXPECT_EQ(lint_exit_code(LintGateOutcome::kExitError), 1);
}

}  // namespace
}  // namespace krak::analyze
