#include "analyze/lint_curves.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analyze/rules.hpp"
#include "core/cost_table.hpp"
#include "network/machine.hpp"
#include "simapp/costmodel.hpp"
#include "util/piecewise.hpp"

namespace krak::analyze {
namespace {

/// Cost table with a well-behaved curve for every (phase, material):
/// constant per-cell cost, so totals grow linearly and no knee exists.
core::CostTable make_clean_table() {
  core::CostTable table;
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (mesh::Material material : mesh::all_materials()) {
      for (double cells : {10.0, 100.0, 1000.0, 10000.0}) {
        table.add_sample(phase, material, cells, 2e-6);
      }
    }
  }
  return table;
}

TEST(LintCostTable, CleanTablePasses) {
  DiagnosticReport report;
  lint_cost_table(make_clean_table(), report);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(LintCostTable, MissingRequiredPairIsCoverageError) {
  core::CostTable table;  // entirely empty
  DiagnosticReport report;
  lint_cost_table(table, report);
  EXPECT_TRUE(report.has_rule(rules::kCurveCoverage));
  // 15 phases x 4 materials, all missing.
  EXPECT_EQ(report.error_count(), 60u);
}

TEST(LintCostTable, MaskExemptsAbsentMaterials) {
  core::CostTable table;
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (double cells : {10.0, 100.0}) {
      table.add_sample(phase, mesh::Material::kFoam, cells, 1e-6);
    }
  }
  const MaterialMask foam_only = {false, false, true, false};
  DiagnosticReport report;
  lint_cost_table(table, report, foam_only);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(LintCostTable, ShrinkingTotalCostIsMonotoneError) {
  core::CostTable table = make_clean_table();
  // 100 cells * 1e-4 = 1e-2 s, then 1000 cells * 1e-6 = 1e-3 s: the
  // whole subgrid got cheaper by growing. Impossible.
  table.add_sample(1, mesh::Material::kHEGas, 100.0, 1e-4);
  table.add_sample(1, mesh::Material::kHEGas, 1000.0, 1e-6);
  DiagnosticReport report;
  lint_cost_table(table, report);
  EXPECT_TRUE(report.has_rule(rules::kCurveTotalMonotone));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintCostTable, DoubleKneeIsWarning) {
  core::CostTable table = make_clean_table();
  const double xs[] = {1.0, 10.0, 100.0, 1000.0, 10000.0};
  const double ys[] = {1e-6, 2e-6, 1e-6, 2e-6, 1e-6};
  for (std::size_t i = 0; i < 5; ++i) {
    table.add_sample(3, mesh::Material::kAluminumInner, xs[i], ys[i]);
  }
  DiagnosticReport report;
  lint_cost_table(table, report);
  EXPECT_TRUE(report.has_rule(rules::kCurveKnee));
  // The oscillation keeps totals rising, so the knee warning is the only
  // finding and it is not an error.
  EXPECT_FALSE(report.has_errors()) << report.to_text();
}

TEST(LintCostTable, SingleKneeIsAccepted) {
  core::CostTable table = make_clean_table();
  // One knee at 100 cells (cache falloff), as the paper's curves show.
  const double xs[] = {1.0, 100.0, 1000.0, 10000.0};
  const double ys[] = {1e-6, 3e-6, 2.5e-6, 2.4e-6};
  for (std::size_t i = 0; i < 4; ++i) {
    table.add_sample(5, mesh::Material::kFoam, xs[i], ys[i]);
  }
  DiagnosticReport report;
  lint_cost_table(table, report);
  EXPECT_FALSE(report.has_rule(rules::kCurveKnee)) << report.to_text();
}

TEST(LintCostTable, SingleSampleIsCoverageWarning) {
  core::CostTable table = make_clean_table();
  core::CostTable sparse;
  sparse.add_sample(1, mesh::Material::kHEGas, 100.0, 1e-6);
  const MaterialMask he_only = {true, false, false, false};
  DiagnosticReport report;
  lint_cost_table(sparse, report, he_only);
  EXPECT_TRUE(report.has_rule(rules::kCurveCoverage));
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(LintCostTable, ZeroCostSamplesAreInfoNotError) {
  core::CostTable table;
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (double cells : {10.0, 100.0, 1000.0}) {
      table.add_sample(phase, mesh::Material::kAluminumOuter, cells, 0.0);
    }
  }
  const MaterialMask outer_only = {false, false, false, true};
  DiagnosticReport report;
  lint_cost_table(table, report, outer_only);
  EXPECT_FALSE(report.has_errors()) << report.to_text();
  EXPECT_EQ(report.count(Severity::kInfo),
            static_cast<std::size_t>(simapp::kPhaseCount));
  EXPECT_TRUE(report.has_rule(rules::kCurvePositive));
}

network::MessageCostModel make_model(double latency_seconds,
                                     double per_byte_seconds) {
  const std::vector<double> sizes = {1.0, 4.0 * 1024.0 * 1024.0};
  const std::vector<double> lat = {latency_seconds, latency_seconds};
  const std::vector<double> tb = {per_byte_seconds, per_byte_seconds};
  return network::MessageCostModel(util::PiecewiseLinear(sizes, lat),
                                   util::PiecewiseLinear(sizes, tb));
}

TEST(LintMessageModel, Es45QsNetModelIsClean) {
  DiagnosticReport report;
  lint_message_model(network::make_es45_qsnet().network, "net", report);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(LintMessageModel, SecondsScaleLatencyIsUnitWarning) {
  DiagnosticReport report;
  lint_message_model(make_model(5.0, 1e-9), "net", report);
  EXPECT_TRUE(report.has_rule(rules::kMessageUnits));
  EXPECT_EQ(report.warning_count(), 1u);
  EXPECT_FALSE(report.has_errors());
}

TEST(LintMessageModel, PerByteLargerThanLatencyIsUnitWarning) {
  // A "per-byte" cost above the whole start-up latency means total
  // message times were loaded into the TB table.
  DiagnosticReport report;
  lint_message_model(make_model(5e-6, 1e-4), "net", report);
  EXPECT_TRUE(report.has_rule(rules::kMessageUnits));
  EXPECT_GE(report.warning_count(), 1u);
}

TEST(LintMessageModel, DecreasingTmsgIsError) {
  // Per-byte cost falling fast enough that Tmsg(2S) < Tmsg(S).
  const std::vector<double> sizes = {1.0, 4.0 * 1024.0 * 1024.0};
  const std::vector<double> lat = {1e-6, 1e-6};
  const std::vector<double> tb = {1e-2, 1e-12};
  const network::MessageCostModel model(util::PiecewiseLinear(sizes, lat),
                                        util::PiecewiseLinear(sizes, tb));
  DiagnosticReport report;
  lint_message_model(model, "net", report);
  EXPECT_TRUE(report.has_rule(rules::kMessageUnits));
  EXPECT_TRUE(report.has_errors());
}

}  // namespace
}  // namespace krak::analyze
