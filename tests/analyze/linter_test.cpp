// Integration tests: the linter end to end on a fully clean bundle and
// on the corrupted fixture, asserting the exact diagnostics the fixture
// was built to trip (docs/ANALYSIS.md lists the same expectations).

#include "analyze/linter.hpp"

#include <gtest/gtest.h>

#include "analyze/fixtures.hpp"
#include "analyze/lint_partition.hpp"
#include "analyze/rules.hpp"
#include "core/calibration.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "partition/partition.hpp"
#include "simapp/costmodel.hpp"

namespace krak::analyze {
namespace {

TEST(LintModel, CleanBundleHasNoFindings) {
  const mesh::InputDeck deck =
      mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 16, partition::PartitionMethod::kMultilevel, 1);
  const network::MachineConfig machine = network::make_es45_qsnet();
  const simapp::ComputationCostEngine application;
  const core::CostTable costs =
      core::calibrate_from_input(application, deck, {4, 16, 64});
  const simapp::SimKrakOptions options;

  LintInput input;
  input.deck = &deck;
  input.partition = &part;
  input.machine = &machine;
  input.costs = &costs;
  input.options = &options;
  input.pes = 16;

  const DiagnosticReport report = lint_model(input);
  EXPECT_FALSE(report.has_errors()) << report.to_text();
  EXPECT_EQ(report.warning_count(), 0u) << report.to_text();
}

TEST(LintModel, MissingDeckIsError) {
  const DiagnosticReport report = lint_model(LintInput{});
  EXPECT_TRUE(report.has_rule(rules::kDeckShape));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintModel, NonPositiveIterationsIsOptionsError) {
  const mesh::InputDeck deck =
      mesh::make_standard_deck(mesh::DeckSize::kSmall);
  simapp::SimKrakOptions options;
  options.iterations = 0;
  LintInput input;
  input.deck = &deck;
  input.options = &options;
  const DiagnosticReport report = lint_model(input);
  EXPECT_TRUE(report.has_rule(rules::kOptionsRange));
  EXPECT_TRUE(report.has_errors());
}

TEST(CorruptedFixture, TripsAtLeastFiveDistinctErrorRules) {
  const DiagnosticReport report = lint_fixture(make_corrupted_fixture());
  EXPECT_TRUE(report.has_errors());
  EXPECT_GE(report.distinct_rule_count(Severity::kError), 5u)
      << report.to_text();
}

TEST(CorruptedFixture, TripsEveryExpectedRule) {
  const DiagnosticReport report = lint_fixture(make_corrupted_fixture());
  // Deck: detonator at (1000, 1000) on an 8x4 grid with no HE gas.
  EXPECT_TRUE(report.has_rule(rules::kDeckDetonator));
  // Subdomains: lost cells, mismatched material sums, 3-for-4 face
  // groups, one ghost node on four faces, no mirror boundary.
  EXPECT_TRUE(report.has_rule(rules::kCellConservation));
  EXPECT_TRUE(report.has_rule(rules::kMaterialConservation));
  EXPECT_TRUE(report.has_rule(rules::kFaceGroupSum));
  EXPECT_TRUE(report.has_rule(rules::kGhostFace));
  EXPECT_TRUE(report.has_rule(rules::kBoundarySymmetry));
  // Machine: zero PEs per node, negative speedup, seconds-scale latency.
  EXPECT_TRUE(report.has_rule(rules::kMachineShape));
  EXPECT_TRUE(report.has_rule(rules::kMessageUnits));
  // Cost table: shrinking totals, double knee, missing pairs.
  EXPECT_TRUE(report.has_rule(rules::kCurveTotalMonotone));
  EXPECT_TRUE(report.has_rule(rules::kCurveKnee));
  EXPECT_TRUE(report.has_rule(rules::kCurveCoverage));
  // Options: zero iterations.
  EXPECT_TRUE(report.has_rule(rules::kOptionsRange));
}

TEST(CorruptedFixture, ExactDiagnosticsOnHandBuiltSubdomains) {
  // Lint ONLY the hand-built subdomain records so the counts are exact
  // and independent of the machine/cost findings.
  const CorruptedFixture fixture = make_corrupted_fixture();
  DiagnosticReport report;
  lint_subdomains(fixture.deck, fixture.subdomains, report);

  // pe0 claims 20 cells but its materials sum to 16.
  // pe0+pe1 hold 28 != 32 deck cells; Al-inner 14 != 16, foam 10 != 16.
  // pe0->pe1: groups sum 3 != 4 faces; 1 ghost on 4 faces; no mirror.
  EXPECT_EQ(report.error_count(), 7u) << report.to_text();
  EXPECT_EQ(report.warning_count(), 0u) << report.to_text();
  EXPECT_TRUE(report.has_rule(rules::kMaterialConservation));
  EXPECT_TRUE(report.has_rule(rules::kCellConservation));
  EXPECT_TRUE(report.has_rule(rules::kFaceGroupSum));
  EXPECT_TRUE(report.has_rule(rules::kGhostFace));
  EXPECT_TRUE(report.has_rule(rules::kBoundarySymmetry));
}

}  // namespace
}  // namespace krak::analyze
