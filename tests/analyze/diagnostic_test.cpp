#include "analyze/diagnostic.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace krak::analyze {
namespace {

DiagnosticReport make_mixed_report() {
  DiagnosticReport report;
  report.info("rule-c", "comp", "an info note");
  report.error("rule-a", "comp", "first error");
  report.warning("rule-b", "comp", "a warning");
  report.error("rule-a", "other", "second error");
  return report;
}

TEST(DiagnosticReport, CountsBySeverity) {
  const DiagnosticReport report = make_mixed_report();
  EXPECT_EQ(report.size(), 4u);
  EXPECT_EQ(report.error_count(), 2u);
  EXPECT_EQ(report.warning_count(), 1u);
  EXPECT_EQ(report.count(Severity::kInfo), 1u);
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.empty());
}

TEST(DiagnosticReport, EmptyReportHasNoErrors) {
  const DiagnosticReport report;
  EXPECT_TRUE(report.empty());
  EXPECT_FALSE(report.has_errors());
  EXPECT_EQ(report.distinct_rule_count(), 0u);
}

TEST(DiagnosticReport, SortedRanksErrorsFirstAndIsStable) {
  const auto sorted = make_mixed_report().sorted();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].severity, Severity::kError);
  EXPECT_EQ(sorted[0].message, "first error");  // insertion order kept
  EXPECT_EQ(sorted[1].severity, Severity::kError);
  EXPECT_EQ(sorted[1].message, "second error");
  EXPECT_EQ(sorted[2].severity, Severity::kWarning);
  EXPECT_EQ(sorted[3].severity, Severity::kInfo);
}

TEST(DiagnosticReport, DistinctRuleCountFiltersBySeverity) {
  const DiagnosticReport report = make_mixed_report();
  EXPECT_EQ(report.distinct_rule_count(), 3u);
  EXPECT_EQ(report.distinct_rule_count(Severity::kWarning), 2u);
  EXPECT_EQ(report.distinct_rule_count(Severity::kError), 1u);
}

TEST(DiagnosticReport, HasRule) {
  const DiagnosticReport report = make_mixed_report();
  EXPECT_TRUE(report.has_rule("rule-a"));
  EXPECT_TRUE(report.has_rule("rule-c"));
  EXPECT_FALSE(report.has_rule("rule-z"));
}

TEST(DiagnosticReport, MergeAppendsEverything) {
  DiagnosticReport target = make_mixed_report();
  DiagnosticReport extra;
  extra.error("rule-d", "comp", "merged");
  target.merge(extra);
  EXPECT_EQ(target.size(), 5u);
  EXPECT_TRUE(target.has_rule("rule-d"));
}

TEST(DiagnosticReport, ToTextEndsWithSummaryLine) {
  const std::string text = make_mixed_report().to_text();
  EXPECT_NE(text.find("model lint: 2 error(s), 1 warning(s), 1 note(s)"),
            std::string::npos);
  // Severity-ranked: the first line is an error.
  EXPECT_EQ(text.rfind("error", 0), 0u);
}

TEST(DiagnosticReport, ToCsvHasHeaderAndEscapesCommas) {
  DiagnosticReport report;
  report.error("rule", "comp,with,commas", "msg \"quoted\"");
  const std::string csv = report.to_csv();
  EXPECT_EQ(csv.rfind("severity,rule,component,message\n", 0), 0u);
  EXPECT_NE(csv.find("\"comp,with,commas\""), std::string::npos);
  EXPECT_NE(csv.find("\"msg \"\"quoted\"\"\""), std::string::npos);
}

TEST(DiagnosticReport, StreamOperatorMatchesToText) {
  const DiagnosticReport report = make_mixed_report();
  std::ostringstream os;
  os << report;
  EXPECT_EQ(os.str(), report.to_text());
}

TEST(Severity, Names) {
  EXPECT_EQ(severity_name(Severity::kError), "error");
  EXPECT_EQ(severity_name(Severity::kWarning), "warning");
  EXPECT_EQ(severity_name(Severity::kInfo), "info");
}

}  // namespace
}  // namespace krak::analyze
