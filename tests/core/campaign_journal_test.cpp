#include "core/campaign_journal.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "util/error.hpp"

namespace krak::core {
namespace {

namespace fs = std::filesystem;

class CampaignJournalTest : public ::testing::Test {
 protected:
  CampaignJournalTest()
      : directory_(fs::path(::testing::TempDir()) /
                   ("krak_journal_" +
                    std::string(::testing::UnitTest::GetInstance()
                                    ->current_test_info()
                                    ->name()))),
        path_(directory_ / "campaign.krakjournal") {
    fs::remove_all(directory_);
  }

  ~CampaignJournalTest() override {
    std::error_code ec;
    fs::remove_all(directory_, ec);
  }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  static void append_raw(const fs::path& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << text;
  }

  fs::path directory_;
  fs::path path_;
};

TEST_F(CampaignJournalTest, FreshJournalWritesTheMagicHeader) {
  const CampaignJournal journal(path_);
  EXPECT_EQ(journal.recovery().records, 0u);
  EXPECT_FALSE(journal.recovery().torn_tail);
  EXPECT_EQ(slurp(path_), "krakjournal 1\n");
}

TEST_F(CampaignJournalTest, RecordsRoundTripAcrossReopen) {
  ValidationPoint point;
  point.problem = "medium problem (64 PEs)";
  point.pes = 64;
  // Values with no short decimal form: replay must be bit-exact.
  point.measured = 0.1 + 0.2;
  point.predicted = 1.0 / 3.0;
  {
    CampaignJournal journal(path_);
    journal.record_running(0xaau, 1);
    journal.record_done(0xaau, 1, point);
    journal.record_running(0xbbu, 1);
    journal.record_failed(0xbbu, 1, /*transient=*/true, "wall deadline");
    journal.record_running(0xbbu, 2);
    journal.record_failed(0xbbu, 2, /*transient=*/false, "rank 3 hang");
    journal.record_quarantined(0xbbu, 2, "rank 3 hang");
  }
  CampaignJournal journal(path_);
  EXPECT_EQ(journal.recovery().records, 7u);
  EXPECT_EQ(journal.recovery().scenarios, 2u);
  EXPECT_EQ(journal.recovery().completed, 1u);
  EXPECT_EQ(journal.recovery().quarantined, 1u);
  EXPECT_FALSE(journal.recovery().torn_tail);

  const CampaignJournal::History done = journal.history(0xaau);
  EXPECT_TRUE(done.done);
  EXPECT_EQ(done.attempts, 1u);
  EXPECT_FALSE(done.interrupted);
  EXPECT_EQ(done.point.problem, point.problem);
  EXPECT_EQ(done.point.pes, point.pes);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(done.point.measured),
            std::bit_cast<std::uint64_t>(point.measured));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(done.point.predicted),
            std::bit_cast<std::uint64_t>(point.predicted));

  const CampaignJournal::History poisoned = journal.history(0xbbu);
  EXPECT_TRUE(poisoned.quarantined);
  EXPECT_EQ(poisoned.attempts, 2u);
  EXPECT_EQ(poisoned.transient_failures, 1u);
  EXPECT_EQ(poisoned.deterministic_failures, 1u);
  EXPECT_EQ(poisoned.failures(), 2u);
  EXPECT_EQ(poisoned.last_error, "rank 3 hang");
}

TEST_F(CampaignJournalTest, UnseenFingerprintHasEmptyHistory) {
  const CampaignJournal journal(path_);
  const CampaignJournal::History history = journal.history(0x123u);
  EXPECT_EQ(history.attempts, 0u);
  EXPECT_FALSE(history.done);
  EXPECT_FALSE(history.quarantined);
  EXPECT_FALSE(history.interrupted);
}

TEST_F(CampaignJournalTest, InterruptedAttemptIsNotAFailure) {
  {
    CampaignJournal journal(path_);
    journal.record_running(0xccu, 1);
    // Process dies here: no outcome record.
  }
  const CampaignJournal journal(path_);
  const CampaignJournal::History history = journal.history(0xccu);
  EXPECT_TRUE(history.interrupted);
  EXPECT_EQ(history.attempts, 1u);  // attempt numbering stays monotone
  EXPECT_EQ(history.failures(), 0u);  // but no budget was burned
}

TEST_F(CampaignJournalTest, TornTailIsTruncatedAndRecoveryContinues) {
  {
    CampaignJournal journal(path_);
    journal.record_running(0xddu, 1);
    journal.record_failed(0xddu, 1, /*transient=*/false, "boom");
  }
  const auto intact_size = fs::file_size(path_);
  append_raw(path_, "running 00000000000000dd 2");  // torn: no newline

  CampaignJournal journal(path_);
  EXPECT_TRUE(journal.recovery().torn_tail);
  EXPECT_EQ(journal.recovery().dropped_bytes, 26u);
  EXPECT_EQ(journal.recovery().records, 2u);
  EXPECT_EQ(fs::file_size(path_), intact_size);
  // The journal stays appendable after truncation.
  journal.record_running(0xddu, 2);
  const CampaignJournal::History history = journal.history(0xddu);
  EXPECT_EQ(history.attempts, 2u);
  EXPECT_EQ(history.deterministic_failures, 1u);
}

TEST_F(CampaignJournalTest, CorruptMidFileRecordDropsItAndTheRest) {
  {
    CampaignJournal journal(path_);
    journal.record_running(0xeeu, 1);
    journal.record_done(0xeeu, 1, ValidationPoint{"p", 8, 1.0, 2.0});
  }
  // Flip one byte inside the first record's checksum: recovery must
  // stop trusting the file at that line.
  std::string text = slurp(path_);
  const std::size_t line_end = text.find('\n', text.find('\n') + 1);
  ASSERT_NE(line_end, std::string::npos);
  text[line_end - 1] = text[line_end - 1] == '0' ? '1' : '0';
  { std::ofstream(path_, std::ios::binary | std::ios::trunc) << text; }

  CampaignJournal journal(path_);
  EXPECT_TRUE(journal.recovery().torn_tail);
  EXPECT_EQ(journal.recovery().records, 0u);
  EXPECT_FALSE(journal.history(0xeeu).done);
  // The file was truncated back to just the header.
  EXPECT_EQ(slurp(path_), "krakjournal 1\n");
}

TEST_F(CampaignJournalTest, RefusesToAdoptANonJournalFile) {
  fs::create_directories(directory_);
  { std::ofstream(path_) << "precious user data\nmore of it\n"; }
  EXPECT_THROW({ CampaignJournal journal(path_); }, util::KrakError);
  // The mistyped file was not truncated into a journal.
  EXPECT_EQ(slurp(path_), "precious user data\nmore of it\n");
}

TEST_F(CampaignJournalTest, CreatesMissingParentDirectories) {
  const fs::path nested = directory_ / "a" / "b" / "campaign.krakjournal";
  CampaignJournal journal(nested);
  journal.record_running(1u, 1);
  EXPECT_TRUE(fs::exists(nested));
}

TEST(JournalEscape, RoundTripsHostileStrings) {
  const std::string hostile = "spaces and % signs\tand\nnewlines\x7f";
  const std::string escaped = journal_escape(hostile);
  EXPECT_EQ(escaped.find(' '), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  const auto back = journal_unescape(escaped);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, hostile);
}

TEST(JournalEscape, EmptyStringEncodesAsPercent) {
  EXPECT_EQ(journal_escape(""), "%");
  const auto back = journal_unescape("%");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "");
}

TEST(JournalEscape, MalformedEscapesAreRejected) {
  EXPECT_FALSE(journal_unescape("trailing%2").has_value());
  EXPECT_FALSE(journal_unescape("bad%zzhex").has_value());
}

TEST(JournalChecksum, MatchesKnownFnv1aVector) {
  // FNV-1a 64 of the empty string is the offset basis.
  EXPECT_EQ(journal_checksum(""), 0xcbf29ce484222325ull);
  EXPECT_NE(journal_checksum("running"), journal_checksum("runnin"));
}

}  // namespace
}  // namespace krak::core
