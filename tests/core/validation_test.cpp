#include "core/validation.hpp"

#include <gtest/gtest.h>

#include "core/calibration.hpp"
#include "network/machine.hpp"

namespace krak::core {
namespace {

struct ValidationFixture : public ::testing::Test {
  simapp::ComputationCostEngine engine;
  mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  KrakModel model{calibrate_from_input(engine, deck, {8, 32, 128}),
                  network::make_es45_qsnet()};
};

TEST_F(ValidationFixture, ErrorUsesPaperConvention) {
  ValidationPoint point;
  point.measured = 100.0;
  point.predicted = 110.0;
  EXPECT_DOUBLE_EQ(point.error(), -0.1);  // over-prediction is negative
}

TEST_F(ValidationFixture, MeshSpecificPointIsPopulated) {
  const ValidationPoint point =
      validate_mesh_specific(deck, 16, model, engine);
  EXPECT_EQ(point.pes, 16);
  EXPECT_EQ(point.problem, deck.name());
  EXPECT_GT(point.measured, 0.0);
  EXPECT_GT(point.predicted, 0.0);
}

TEST_F(ValidationFixture, GeneralPointIsPopulated) {
  const ValidationPoint point = validate_general(
      deck, 32, model, GeneralModelMode::kHomogeneous, engine);
  EXPECT_EQ(point.pes, 32);
  EXPECT_GT(point.measured, 0.0);
  EXPECT_GT(point.predicted, 0.0);
}

TEST_F(ValidationFixture, SameConfigSameMeasurement) {
  // Mesh-specific and general validation share the measurement path, so
  // the measured column of a table is consistent across model flavors.
  const ValidationPoint a = validate_mesh_specific(deck, 16, model, engine);
  const ValidationPoint b = validate_general(
      deck, 16, model, GeneralModelMode::kHomogeneous, engine);
  EXPECT_DOUBLE_EQ(a.measured, b.measured);
}

TEST_F(ValidationFixture, DeterministicAcrossCalls) {
  const ValidationPoint a = validate_mesh_specific(deck, 16, model, engine);
  const ValidationPoint b = validate_mesh_specific(deck, 16, model, engine);
  EXPECT_DOUBLE_EQ(a.measured, b.measured);
  EXPECT_DOUBLE_EQ(a.predicted, b.predicted);
}

TEST_F(ValidationFixture, ConfigSeedChangesMeasurement) {
  ValidationConfig other;
  other.noise_seed = 12345;
  const ValidationPoint a = validate_mesh_specific(deck, 16, model, engine);
  const ValidationPoint b =
      validate_mesh_specific(deck, 16, model, engine, other);
  EXPECT_NE(a.measured, b.measured);
  // But predictions don't depend on measurement noise.
  EXPECT_DOUBLE_EQ(a.predicted, b.predicted);
}

TEST_F(ValidationFixture, SimThreadsNeverChangeMeasurement) {
  // ValidationConfig::sim_threads switches the measurement onto the
  // sharded parallel simulator, whose contract is bit-identity with
  // the single-thread oracle (docs/PERFORMANCE.md) — measurement noise
  // included, since noise resampling is the subtlest part of that
  // contract.
  const ValidationConfig serial;
  const ValidationPoint oracle =
      validate_mesh_specific(deck, 16, model, engine, serial);
  for (std::int32_t threads : {2, 8}) {
    ValidationConfig parallel = serial;
    parallel.sim_threads = threads;
    const ValidationPoint point =
        validate_mesh_specific(deck, 16, model, engine, parallel);
    EXPECT_EQ(oracle.measured, point.measured) << "threads=" << threads;
    EXPECT_EQ(oracle.predicted, point.predicted) << "threads=" << threads;
  }
}

TEST_F(ValidationFixture, ModeratePEsGiveReasonableAccuracy) {
  // Not a paper-shape test (those live in integration/) — just a sanity
  // band: the model should be within 50% on a mid-size configuration.
  const ValidationPoint point =
      validate_mesh_specific(deck, 16, model, engine);
  EXPECT_LT(std::abs(point.error()), 0.5);
}

}  // namespace
}  // namespace krak::core
