// Hardened file-open paths for the calibrated cost-table format: a
// missing or truncated table must be a one-line diagnosis naming the
// path and the cause (docs/RESILIENCE.md).

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "core/table_io.hpp"
#include "util/error.hpp"

namespace krak::core {
namespace {

std::string load_error(const std::string& path) {
  try {
    (void)load_cost_table(path);
  } catch (const util::KrakError& error) {
    return error.what();
  }
  return {};
}

TEST(CostTableIoErrors, MissingFileNamesPathAndOsCause) {
  const std::string path = "/nonexistent/dir/costs.krakcosts";
  const std::string what = load_error(path);
  ASSERT_FALSE(what.empty()) << "load_cost_table should have thrown";
  EXPECT_NE(what.find("load_cost_table"), std::string::npos) << what;
  EXPECT_NE(what.find(path), std::string::npos) << what;
  EXPECT_NE(what.find("No such file"), std::string::npos) << what;
}

TEST(CostTableIoErrors, TruncatedFileNamesPathAndViolation) {
  const std::string path = ::testing::TempDir() + "/truncated.krakcosts";
  {
    std::ofstream out(path);
    out << "krakcosts 1\nsample 1 0 100\n";  // cut off mid-sample, no end
  }
  const std::string what = load_error(path);
  ASSERT_FALSE(what.empty()) << "load_cost_table should have thrown";
  EXPECT_NE(what.find(path), std::string::npos) << what;
  EXPECT_NE(what.find("malformed cost table"), std::string::npos) << what;
}

TEST(CostTableIoErrors, SaveIntoMissingDirectoryNamesPathAndOsCause) {
  try {
    save_cost_table("/nonexistent/dir/costs.krakcosts", CostTable{});
    FAIL() << "expected KrakError";
  } catch (const util::KrakError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("save_cost_table"), std::string::npos) << what;
    EXPECT_NE(what.find("No such file"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace krak::core
