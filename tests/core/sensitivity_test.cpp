#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include "network/machine.hpp"
#include "util/error.hpp"

namespace krak::core {
namespace {

using mesh::Material;

CostTable flat_table(double cost) {
  CostTable table;
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (Material m : mesh::all_materials()) {
      table.add_sample(phase, m, 1.0, cost);
    }
  }
  return table;
}

TEST(Sensitivity, AllSensitivitiesNonNegative) {
  const KrakModel model(flat_table(1e-6), network::make_es45_qsnet());
  const SensitivityReport report = analyze_sensitivity(model, 204800, 128);
  EXPECT_GE(report.latency_sensitivity, 0.0);
  EXPECT_GE(report.bandwidth_sensitivity, 0.0);
  EXPECT_GE(report.compute_sensitivity, 0.0);
  EXPECT_GT(report.base_time, 0.0);
}

TEST(Sensitivity, ComputeDominatesAtSmallScale) {
  // Few processors: computation is nearly all of the iteration, so a
  // compute slowdown hurts ~delta while network changes barely matter.
  const KrakModel model(flat_table(1e-6), network::make_es45_qsnet());
  const SensitivityReport report =
      analyze_sensitivity(model, 204800, 4, GeneralModelMode::kHomogeneous,
                          0.10);
  EXPECT_EQ(report.dominant_parameter(), "compute");
  EXPECT_NEAR(report.compute_sensitivity, 0.10, 0.01);
  EXPECT_LT(report.latency_sensitivity, 0.01);
}

TEST(Sensitivity, LatencyGrowsWithScale) {
  // Strong scaling shifts weight from compute to log(P) collective
  // latency, so latency sensitivity must rise with the PE count.
  const KrakModel model(flat_table(1e-6), network::make_es45_qsnet());
  const double at16 =
      analyze_sensitivity(model, 204800, 16).latency_sensitivity;
  const double at1024 =
      analyze_sensitivity(model, 204800, 1024).latency_sensitivity;
  EXPECT_GT(at1024, at16);
}

TEST(Sensitivity, SensitivitiesRoughlySumToDelta) {
  // Time = compute + latency-part + byte-part: perturbing each by delta
  // perturbs the total by delta in aggregate (the model is linear in
  // each parameter).
  const KrakModel model(flat_table(1e-6), network::make_es45_qsnet());
  const SensitivityReport report =
      analyze_sensitivity(model, 204800, 256, GeneralModelMode::kHomogeneous,
                          0.10);
  const double sum = report.latency_sensitivity +
                     report.bandwidth_sensitivity +
                     report.compute_sensitivity;
  EXPECT_NEAR(sum, 0.10, 0.005);
}

TEST(Sensitivity, DeltaValidated) {
  const KrakModel model(flat_table(1e-6), network::make_es45_qsnet());
  EXPECT_THROW(
      (void)analyze_sensitivity(model, 204800, 16,
                                GeneralModelMode::kHomogeneous, 0.0),
      util::InvalidArgument);
  EXPECT_THROW(
      (void)analyze_sensitivity(model, 204800, 16,
                                GeneralModelMode::kHomogeneous, 1.5),
      util::InvalidArgument);
}

TEST(Sensitivity, ReportToStringNamesDominantParameter) {
  const KrakModel model(flat_table(1e-6), network::make_es45_qsnet());
  const SensitivityReport report = analyze_sensitivity(model, 204800, 4);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("dominant parameter: compute"), std::string::npos);
  EXPECT_NE(text.find("network latency"), std::string::npos);
}

}  // namespace
}  // namespace krak::core
