#include "core/comp_model.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "mesh/deck.hpp"
#include "partition/partition.hpp"

namespace krak::core {
namespace {

using mesh::Material;

/// A flat cost table: every phase/material costs `cost` per cell at any
/// size, making Equations (1)-(3) checkable by hand.
CostTable flat_table(double cost) {
  CostTable table;
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (Material m : mesh::all_materials()) {
      table.add_sample(phase, m, 1.0, cost);
    }
  }
  return table;
}

partition::PartitionStats make_stats(std::int32_t pes) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, pes, partition::PartitionMethod::kMultilevel, 1);
  // PartitionStats copies everything it needs; the deck may go out of
  // scope afterwards.
  return partition::PartitionStats(deck, part);
}

TEST(CompModel, PhaseTimeIsMaxOverProcessors) {
  // Equation (2): time of a phase is the max over processors.
  const mesh::InputDeck deck = mesh::make_uniform_deck(4, 1, Material::kFoam);
  const partition::Partition part(2, {0, 0, 0, 1});  // 3 cells vs 1 cell
  const partition::PartitionStats stats(deck, part);
  const CostTable table = flat_table(1e-3);
  EXPECT_NEAR(phase_computation_time(table, 1, stats), 3e-3, 1e-12);
}

TEST(CompModel, IterationTimeIsSumOverPhases) {
  // Equation (3) = sum over phases of Equation (2).
  const auto stats = make_stats(8);
  const CostTable table = flat_table(1e-6);
  const auto per_phase = per_phase_computation_times(table, stats);
  const double sum = std::accumulate(per_phase.begin(), per_phase.end(), 0.0);
  EXPECT_NEAR(iteration_computation_time(table, stats), sum, 1e-15);
}

TEST(CompModel, FlatTableGivesMaxCellsTimesCost) {
  const auto stats = make_stats(16);
  const CostTable table = flat_table(2e-6);
  const double expected_phase =
      2e-6 * static_cast<double>(stats.max_cells_per_pe());
  EXPECT_NEAR(phase_computation_time(table, 3, stats), expected_phase, 1e-12);
  EXPECT_NEAR(iteration_computation_time(table, stats),
              simapp::kPhaseCount * expected_phase, 1e-10);
}

TEST(CompModel, BalancedPartitionBeatsImbalanced) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(8, 1, Material::kFoam);
  const partition::Partition balanced(2, {0, 0, 0, 0, 1, 1, 1, 1});
  const partition::Partition skewed(2, {0, 0, 0, 0, 0, 0, 0, 1});
  const CostTable table = flat_table(1e-3);
  EXPECT_LT(iteration_computation_time(
                table, partition::PartitionStats(deck, balanced)),
            iteration_computation_time(
                table, partition::PartitionStats(deck, skewed)));
}

TEST(CompModel, PerPhaseTimesAreNonNegativeAndOrdered) {
  const auto stats = make_stats(16);
  const CostTable table = flat_table(1e-6);
  const auto per_phase = per_phase_computation_times(table, stats);
  for (double t : per_phase) EXPECT_GE(t, 0.0);
}

TEST(CompModel, MoreProcessorsReduceComputation) {
  const CostTable table = flat_table(1e-6);
  const double t8 = iteration_computation_time(table, make_stats(8));
  const double t64 = iteration_computation_time(table, make_stats(64));
  EXPECT_GT(t8, t64);
  // Roughly proportional to max cells per PE (flat costs): factor ~8.
  EXPECT_NEAR(t8 / t64, 8.0, 1.5);
}

}  // namespace
}  // namespace krak::core
