// The emitter (core/bench_report) and the schema validator
// (obs/bench_schema) are written independently; this test pins them to
// each other: a report assembled from real campaign and replay results
// must validate clean.

#include "core/bench_report.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "core/campaign.hpp"
#include "network/machine.hpp"
#include "obs/bench_schema.hpp"
#include "partition/partition.hpp"

namespace krak::core {
namespace {

struct BenchReportFixture : public ::testing::Test {
  simapp::ComputationCostEngine engine;
  network::MachineConfig machine = network::make_es45_qsnet();
  KrakModel model{
      calibrate_from_input(engine,
                           mesh::make_standard_deck(mesh::DeckSize::kSmall),
                           {8, 32, 128}),
      machine};

  simapp::SimKrakResult run_replay(std::int32_t pes) const {
    const mesh::InputDeck deck =
        mesh::make_standard_deck(mesh::DeckSize::kSmall);
    const partition::Partition part = partition::partition_deck(
        deck, pes, partition::PartitionMethod::kMultilevel, 1);
    simapp::SimKrakOptions options;
    options.iterations = 2;
    return simapp::SimKrak(deck, part, machine, engine, options).run();
  }
};

TEST(BenchEnvironmentDetect, FieldsAreNonEmpty) {
  const BenchEnvironment env = detect_bench_environment();
  EXPECT_FALSE(env.git_sha.empty());
  EXPECT_FALSE(env.build_type.empty());
  EXPECT_FALSE(env.compiler.empty());
  EXPECT_GE(env.hardware_concurrency, 1);
}

TEST_F(BenchReportFixture, CampaignJsonCarriesEveryRun) {
  const std::vector<CampaignRun> runs = {
      {mesh::DeckSize::kSmall, 8, CampaignRun::Flavor::kGeneralHomogeneous},
      {mesh::DeckSize::kSmall, 16, CampaignRun::Flavor::kGeneralHomogeneous},
  };
  const CampaignSummary summary =
      run_validation_campaign(model, engine, runs, {}, 2);
  const obs::Json json = campaign_to_json("unit_campaign", summary);
  EXPECT_EQ(json.find("name")->as_string(), "unit_campaign");
  EXPECT_EQ(json.find("runs")->size(), 2u);
  EXPECT_DOUBLE_EQ(json.find("wall_seconds")->as_double(),
                   summary.wall_seconds);
}

TEST_F(BenchReportFixture, ReplayJsonPhasesMatchBreakdownTotals) {
  const simapp::SimKrakResult result = run_replay(8);
  const obs::Json json = replay_to_json("unit_replay", result);
  const obs::Json* phases = json.find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_DOUBLE_EQ(phases->find("compute_s")->as_double(),
                   result.totals.compute);
  EXPECT_DOUBLE_EQ(phases->find("p2p_s")->as_double(),
                   result.totals.p2p_seconds());
  EXPECT_DOUBLE_EQ(phases->find("collective_s")->as_double(),
                   result.totals.collective_seconds());
  EXPECT_DOUBLE_EQ(json.find("makespan_s")->as_double(), result.total_time);
}

TEST_F(BenchReportFixture, AssembledReportPassesSchemaValidation) {
  const std::vector<CampaignRun> runs = {
      {mesh::DeckSize::kSmall, 8, CampaignRun::Flavor::kMeshSpecific},
      {mesh::DeckSize::kSmall, 16, CampaignRun::Flavor::kGeneralHomogeneous},
  };
  const CampaignSummary summary =
      run_validation_campaign(model, engine, runs, {}, 2);

  std::vector<obs::Json> campaigns;
  campaigns.push_back(campaign_to_json("quick_campaign", summary));
  std::vector<obs::Json> replays;
  replays.push_back(replay_to_json("quick_replay", run_replay(8)));

  const obs::Json report = make_bench_report(
      "unit_report", /*quick=*/true, detect_bench_environment(),
      std::move(campaigns), std::move(replays),
      obs::global_registry().snapshot());

  const std::vector<std::string> violations =
      obs::validate_bench_report(report);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violation(s), first: "
      << (violations.empty() ? "" : violations.front());

  // The document also survives a serialization round trip bit-exact.
  EXPECT_EQ(obs::Json::parse(report.dump(2)).dump(2), report.dump(2));
}

}  // namespace
}  // namespace krak::core
