#include "core/partition_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/partition_cache.hpp"
#include "mesh/deck.hpp"
#include "partition/partition.hpp"

namespace krak::core {
namespace {

namespace fs = std::filesystem;

/// Fresh store directory per test; removed on teardown so reruns always
/// start cold.
class PartitionStoreTest : public ::testing::Test {
 protected:
  PartitionStoreTest()
      : directory_(fs::path(::testing::TempDir()) /
                   ("krak_partition_store_" +
                    std::string(::testing::UnitTest::GetInstance()
                                    ->current_test_info()
                                    ->name()))) {
    fs::remove_all(directory_);
  }

  ~PartitionStoreTest() override {
    std::error_code ec;
    fs::remove_all(directory_, ec);
  }

  fs::path directory_;
};

PartitionStore::Key key_for(const mesh::InputDeck& deck, std::int32_t pes,
                            std::uint64_t seed) {
  PartitionStore::Key key;
  key.fingerprint = deck_fingerprint(deck);
  key.pes = pes;
  key.method = partition::PartitionMethod::kMultilevel;
  key.seed = seed;
  return key;
}

TEST_F(PartitionStoreTest, SaveThenLoadRoundtripsExactly) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 16, partition::PartitionMethod::kMultilevel, 1);
  const PartitionStore::Key key = key_for(deck, 16, 1);

  PartitionStore store(directory_);
  store.save(key, part);
  ASSERT_TRUE(fs::exists(store.entry_path(key)));

  const std::optional<partition::Partition> loaded = store.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->parts(), part.parts());
  EXPECT_EQ(loaded->assignment(), part.assignment());
  const PartitionStore::Counters counters = store.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 0u);
  EXPECT_EQ(counters.rejects, 0u);
}

TEST_F(PartitionStoreTest, AbsentEntryIsAMiss) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  PartitionStore store(directory_);
  EXPECT_FALSE(store.load(key_for(deck, 64, 1)).has_value());
  EXPECT_EQ(store.counters().misses, 1u);
}

TEST_F(PartitionStoreTest, EntryFilenameEncodesTheKey) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const PartitionStore::Key key = key_for(deck, 64, 7);
  PartitionStore store(directory_);
  const std::string name = store.entry_path(key).filename().string();
  EXPECT_NE(name.find("-64-multilevel-7.krakpart"), std::string::npos) << name;
  // 16 hex digits of the fingerprint lead the name.
  EXPECT_EQ(name.find('-'), 16u) << name;
}

TEST_F(PartitionStoreTest, CorruptEntryIsRejectedAndEvicted) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 16, partition::PartitionMethod::kMultilevel, 1);
  const PartitionStore::Key key = key_for(deck, 16, 1);

  PartitionStore store(directory_);
  store.save(key, part);
  {
    // Flip the checksum line: the file stays structurally valid, so
    // only the integrity check can catch it.
    std::ifstream in(store.entry_path(key));
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const std::size_t pos = text.find("checksum ");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 9] = text[pos + 9] == '0' ? '1' : '0';
    std::ofstream out(store.entry_path(key), std::ios::trunc);
    out << text;
  }

  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_EQ(store.counters().rejects, 1u);
  // The bad file is gone; the next load is a plain miss and a rerun
  // recomputes the entry.
  EXPECT_FALSE(fs::exists(store.entry_path(key)));
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_EQ(store.counters().misses, 1u);
}

TEST_F(PartitionStoreTest, MismatchedKeyRejectsEntry) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 16, partition::PartitionMethod::kMultilevel, 1);
  const PartitionStore::Key key = key_for(deck, 16, 1);

  PartitionStore store(directory_);
  store.save(key, part);
  // Same bytes renamed under a different seed: header/key disagreement
  // must reject, not silently serve the wrong configuration.
  PartitionStore::Key wrong = key;
  wrong.seed = 2;
  fs::copy_file(store.entry_path(key), store.entry_path(wrong));
  EXPECT_FALSE(store.load(wrong).has_value());
  EXPECT_EQ(store.counters().rejects, 1u);
}

TEST_F(PartitionStoreTest, CacheWarmRerunServesFromStore) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const auto store = std::make_shared<PartitionStore>(directory_);

  PartitionCache cache;
  cache.set_store(store);
  const auto cold = cache.get(deck, 16,
                              partition::PartitionMethod::kMultilevel, 1);
  EXPECT_EQ(store->counters().misses, 1u);
  EXPECT_TRUE(fs::exists(
      store->entry_path(key_for(deck, 16, 1))));

  // A new cache against the same directory models a rerun of the
  // process: the store, not the partitioner, supplies the result.
  PartitionCache rerun;
  rerun.set_store(store);
  const auto warm = rerun.get(deck, 16,
                              partition::PartitionMethod::kMultilevel, 1);
  EXPECT_EQ(store->counters().hits, 1u);
  EXPECT_EQ(warm->partition.assignment(), cold->partition.assignment());
  EXPECT_EQ(warm->stats->total_boundary_faces(),
            cold->stats->total_boundary_faces());
}

TEST_F(PartitionStoreTest, OpeningSweepsOrphanTempFiles) {
  // A crash between the temp write and the rename leaves `*.tmp` files
  // behind; opening the store must sweep them without touching entries.
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 16, partition::PartitionMethod::kMultilevel, 1);
  const PartitionStore::Key key = key_for(deck, 16, 1);
  {
    PartitionStore store(directory_);
    store.save(key, part);
  }
  const fs::path orphan =
      directory_ / "deadbeefdeadbeef-64-multilevel-1.krakpart.tmp";
  std::ofstream(orphan) << "half-written entry";
  ASSERT_TRUE(fs::exists(orphan));

  PartitionStore store(directory_);
  EXPECT_FALSE(fs::exists(orphan));
  // The real entry survived the sweep and still loads.
  EXPECT_TRUE(store.load(key).has_value());
}

TEST_F(PartitionStoreTest, SaveLeavesNoTempFileBehind) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 16, partition::PartitionMethod::kMultilevel, 1);
  const PartitionStore::Key key = key_for(deck, 16, 1);
  PartitionStore store(directory_);
  store.save(key, part);
  for (const fs::directory_entry& entry : fs::directory_iterator(directory_)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
}

TEST_F(PartitionStoreTest, ChecksumMatchesTheStoredDigest) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 16, partition::PartitionMethod::kMultilevel, 1);
  const PartitionStore::Key key = key_for(deck, 16, 1);
  PartitionStore store(directory_);
  store.save(key, part);

  std::ifstream in(store.entry_path(key));
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  char digest[17] = {};
  std::snprintf(digest, sizeof(digest), "%016llx",
                static_cast<unsigned long long>(
                    partition_checksum(part.assignment())));
  EXPECT_NE(text.find(std::string("checksum ") + digest), std::string::npos);
}

}  // namespace
}  // namespace krak::core
