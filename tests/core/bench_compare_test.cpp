// The krak_bench --compare gate (core::compare_campaign_walls) and the
// PR 7 regression it fixes: a campaign name unmatched in either
// direction used to pass silently — a renamed or dropped campaign
// disabled its perf gate without anyone noticing. Unmatched names must
// now fail with a clear message.

#include "core/bench_report.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/bench_schema.hpp"
#include "obs/json.hpp"

namespace krak::core {
namespace {

obs::Json report_with(
    const std::vector<std::pair<std::string, double>>& campaigns) {
  obs::Json out = obs::Json::object();
  obs::Json array = obs::Json::array();
  for (const auto& [name, wall] : campaigns) {
    obs::Json campaign = obs::Json::object();
    campaign["name"] = name;
    campaign["wall_seconds"] = wall;
    array.push_back(std::move(campaign));
  }
  out["campaigns"] = std::move(array);
  return out;
}

TEST(CompareCampaignWalls, MatchedWithinFactorPasses) {
  const obs::Json report = report_with({{"table5", 1.2}, {"table6", 0.8}});
  const obs::Json baseline = report_with({{"table5", 1.0}, {"table6", 1.0}});
  EXPECT_TRUE(compare_campaign_walls(report, baseline, 1.5).empty());
}

TEST(CompareCampaignWalls, RegressionBeyondFactorFails) {
  const obs::Json report = report_with({{"table5", 1.51}, {"table6", 0.8}});
  const obs::Json baseline = report_with({{"table5", 1.0}, {"table6", 1.0}});
  const std::vector<std::string> failures =
      compare_campaign_walls(report, baseline, 1.5);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("table5"), std::string::npos);
  EXPECT_NE(failures[0].find("regressed"), std::string::npos);
}

TEST(CompareCampaignWalls, ExactlyAtFactorStillPasses) {
  const obs::Json report = report_with({{"table5", 1.5}});
  const obs::Json baseline = report_with({{"table5", 1.0}});
  EXPECT_TRUE(compare_campaign_walls(report, baseline, 1.5).empty());
}

TEST(CompareCampaignWalls, CampaignMissingFromBaselineFails) {
  // The silent-pass regression, direction one: the report gained a
  // campaign the baseline has never measured.
  const obs::Json report = report_with({{"table5", 1.0}, {"brand_new", 0.1}});
  const obs::Json baseline = report_with({{"table5", 1.0}});
  const std::vector<std::string> failures =
      compare_campaign_walls(report, baseline, 1.5);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("brand_new"), std::string::npos);
  EXPECT_NE(failures[0].find("baseline"), std::string::npos);
}

TEST(CompareCampaignWalls, BaselineCampaignMissingFromReportFails) {
  // Direction two: a campaign was renamed or dropped, so its baseline
  // entry no longer gates anything.
  const obs::Json report = report_with({{"table5", 1.0}});
  const obs::Json baseline = report_with({{"table5", 1.0}, {"table6", 1.0}});
  const std::vector<std::string> failures =
      compare_campaign_walls(report, baseline, 1.5);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("table6"), std::string::npos);
  EXPECT_NE(failures[0].find("missing"), std::string::npos);
}

TEST(CompareCampaignWalls, RenamedCampaignFailsInBothDirections) {
  const obs::Json report = report_with({{"table5_v2", 1.0}});
  const obs::Json baseline = report_with({{"table5", 1.0}});
  EXPECT_EQ(compare_campaign_walls(report, baseline, 1.5).size(), 2u);
}

TEST(CompareCampaignWalls, MultipleFailuresAllReported) {
  const obs::Json report =
      report_with({{"a", 10.0}, {"b", 10.0}, {"only_report", 1.0}});
  const obs::Json baseline =
      report_with({{"a", 1.0}, {"b", 1.0}, {"only_baseline", 1.0}});
  EXPECT_EQ(compare_campaign_walls(report, baseline, 1.5).size(), 4u);
}

/// A report whose "replays" array holds (name, parallel_wall_s) pairs;
/// a negative wall means a serial replay with no "parallel" object.
obs::Json report_with_replays(
    const std::vector<std::pair<std::string, double>>& replays) {
  obs::Json out = obs::Json::object();
  obs::Json array = obs::Json::array();
  for (const auto& [name, wall] : replays) {
    obs::Json replay = obs::Json::object();
    replay["name"] = name;
    if (wall >= 0.0) {
      attach_parallel_scaling(replay, /*threads=*/8, /*serial_wall_s=*/wall,
                              wall);
    }
    array.push_back(std::move(replay));
  }
  out["replays"] = std::move(array);
  return out;
}

TEST(CompareReplayWalls, MatchedWithinFactorPasses) {
  const obs::Json report =
      report_with_replays({{"small_parallel", 1.2}, {"serial_only", -1.0}});
  const obs::Json baseline =
      report_with_replays({{"small_parallel", 1.0}, {"serial_only", -1.0}});
  EXPECT_TRUE(compare_replay_walls(report, baseline, 1.5).empty());
}

TEST(CompareReplayWalls, RegressionBeyondFactorFails) {
  const obs::Json report = report_with_replays({{"small_parallel", 1.6}});
  const obs::Json baseline = report_with_replays({{"small_parallel", 1.0}});
  const std::vector<std::string> failures =
      compare_replay_walls(report, baseline, 1.5);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("small_parallel"), std::string::npos);
  EXPECT_NE(failures[0].find("regressed"), std::string::npos);
}

TEST(CompareReplayWalls, SerialReplaysAreNotGated) {
  // A serial replay has no engine wall to bound; its presence on either
  // side must not trip the bidirectional matching.
  const obs::Json report =
      report_with_replays({{"parallel", 1.0}, {"report_serial", -1.0}});
  const obs::Json baseline =
      report_with_replays({{"parallel", 1.0}, {"baseline_serial", -1.0}});
  EXPECT_TRUE(compare_replay_walls(report, baseline, 1.5).empty());
}

TEST(CompareReplayWalls, UnmatchedParallelReplayFailsBothDirections) {
  const obs::Json report = report_with_replays({{"renamed_parallel", 1.0}});
  const obs::Json baseline = report_with_replays({{"old_parallel", 1.0}});
  EXPECT_EQ(compare_replay_walls(report, baseline, 1.5).size(), 2u);
}

TEST(AttachParallelScaling, EmitsSchemaValidObject) {
  obs::Json replay = obs::Json::object();
  replay["name"] = std::string("scaling");
  attach_parallel_scaling(replay, /*threads=*/8, /*serial_wall_s=*/2.0,
                          /*parallel_wall_s=*/0.5);
  const obs::Json* parallel = replay.find("parallel");
  ASSERT_NE(parallel, nullptr);
  EXPECT_EQ(parallel->find("threads")->as_double(), 8.0);
  EXPECT_DOUBLE_EQ(parallel->find("serial_wall_s")->as_double(), 2.0);
  EXPECT_DOUBLE_EQ(parallel->find("parallel_wall_s")->as_double(), 0.5);
  EXPECT_DOUBLE_EQ(parallel->find("speedup")->as_double(), 4.0);
}

TEST(AttachParallelScaling, ZeroParallelWallYieldsZeroSpeedup) {
  obs::Json replay = obs::Json::object();
  attach_parallel_scaling(replay, 2, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(replay.find("parallel")->find("speedup")->as_double(), 0.0);
}

TEST(AttachParallelScaling, EmitsAmdahlFields) {
  obs::Json replay = obs::Json::object();
  replay["name"] = std::string("scaling");
  attach_parallel_scaling(replay, /*threads=*/8, /*serial_wall_s=*/2.0,
                          /*parallel_wall_s=*/0.5, /*coordinator_s=*/0.05);
  const obs::Json* parallel = replay.find("parallel");
  ASSERT_NE(parallel, nullptr);
  EXPECT_DOUBLE_EQ(parallel->find("speedup_vs_oracle")->as_double(), 4.0);
  EXPECT_DOUBLE_EQ(
      parallel->find("coordinator_serial_fraction")->as_double(), 0.1);
}

TEST(AttachParallelScaling, CoordinatorFractionClampsToOne) {
  // The coordinator wall is measured inside the run and the replay wall
  // outside it; host scheduling noise must never push the recorded
  // fraction past the [0,1] range the schema pins.
  obs::Json replay = obs::Json::object();
  attach_parallel_scaling(replay, 2, 1.0, 0.5, /*coordinator_s=*/0.8);
  EXPECT_DOUBLE_EQ(
      replay.find("parallel")->find("coordinator_serial_fraction")
          ->as_double(),
      1.0);
}

}  // namespace
}  // namespace krak::core
