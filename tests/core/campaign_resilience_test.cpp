#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "core/campaign.hpp"
#include "core/campaign_journal.hpp"
#include "fault/plan.hpp"
#include "network/machine.hpp"
#include "util/cancellation.hpp"

namespace krak::core {
namespace {

namespace fs = std::filesystem;

/// Campaign resilience layer (docs/RESILIENCE.md): journaled resume,
/// bounded retry, poison quarantine, and wall deadlines around
/// run_validation_campaign.
struct CampaignResilienceFixture : public ::testing::Test {
  CampaignResilienceFixture()
      : directory_(fs::path(::testing::TempDir()) /
                   ("krak_resilience_" +
                    std::string(::testing::UnitTest::GetInstance()
                                    ->current_test_info()
                                    ->name()))),
        journal_path_(directory_ / "campaign.krakjournal") {
    fs::remove_all(directory_);
  }

  ~CampaignResilienceFixture() override {
    std::error_code ec;
    fs::remove_all(directory_, ec);
  }

  /// A run that always throws util::InvalidArgument (a KrakError, so
  /// classified deterministic) before any simulation starts.
  static CampaignRun poison_run() {
    return {mesh::DeckSize::kSmall, -1,
            CampaignRun::Flavor::kGeneralHomogeneous};
  }

  static CampaignRun healthy_run(std::int32_t pes) {
    return {mesh::DeckSize::kSmall, pes,
            CampaignRun::Flavor::kGeneralHomogeneous};
  }

  simapp::ComputationCostEngine engine;
  KrakModel model{
      calibrate_from_input(engine,
                           mesh::make_standard_deck(mesh::DeckSize::kSmall),
                           {8, 32, 128}),
      network::make_es45_qsnet()};
  fs::path directory_;
  fs::path journal_path_;
};

TEST_F(CampaignResilienceFixture, InertPolicyIsBitIdenticalToNoPolicy) {
  const std::vector<CampaignRun> runs = {healthy_run(8), healthy_run(16)};
  const CampaignSummary bare =
      run_validation_campaign(model, engine, runs, {}, 2);
  const CampaignSummary inert =
      run_validation_campaign(model, engine, runs, {}, 2, CampaignPolicy{});
  ASSERT_EQ(inert.points.size(), bare.points.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(bare.points[i].measured),
              std::bit_cast<std::uint64_t>(inert.points[i].measured));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(bare.points[i].predicted),
              std::bit_cast<std::uint64_t>(inert.points[i].predicted));
  }
  EXPECT_EQ(inert.resilience.attempts, runs.size());
  EXPECT_EQ(inert.resilience.retries, 0u);
  EXPECT_EQ(inert.resilience.replayed, 0u);
}

TEST_F(CampaignResilienceFixture, ResumeReplaysJournaledPointsBitIdentically) {
  const std::vector<CampaignRun> runs = {healthy_run(8), healthy_run(16)};
  CampaignPolicy policy;
  policy.label = "resume-test";
  CampaignSummary first;
  {
    CampaignJournal journal(journal_path_);
    policy.journal = &journal;
    first = run_validation_campaign(model, engine, runs, {}, 2, policy);
  }
  ASSERT_FALSE(first.degraded());
  EXPECT_EQ(first.resilience.replayed, 0u);

  // A new process over the same journal: every scenario replays from
  // the journal, nothing is re-measured, and the points are the same
  // bits the first process recorded.
  CampaignJournal journal(journal_path_);
  EXPECT_EQ(journal.recovery().completed, runs.size());
  policy.journal = &journal;
  const CampaignSummary resumed =
      run_validation_campaign(model, engine, runs, {}, 2, policy);
  EXPECT_EQ(resumed.resilience.replayed, runs.size());
  EXPECT_EQ(resumed.resilience.attempts, 0u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(first.points[i].measured),
              std::bit_cast<std::uint64_t>(resumed.points[i].measured));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(first.points[i].predicted),
              std::bit_cast<std::uint64_t>(resumed.points[i].predicted));
  }
}

TEST_F(CampaignResilienceFixture, DeterministicFailureIsQuarantinedAfterN) {
  const std::vector<CampaignRun> runs = {healthy_run(8), poison_run()};
  CampaignJournal journal(journal_path_);
  CampaignPolicy policy;
  policy.journal = &journal;
  policy.max_attempts = 5;
  policy.quarantine_after = 2;
  const CampaignSummary summary =
      run_validation_campaign(model, engine, runs, {}, 2, policy);
  ASSERT_EQ(summary.failures.size(), 1u);
  const CampaignFailure& failure = summary.failures[0];
  EXPECT_EQ(failure.run_index, 1u);
  EXPECT_TRUE(failure.quarantined);
  EXPECT_FALSE(failure.transient);
  // Quarantine fires at the threshold, not the full attempt budget.
  EXPECT_EQ(failure.attempts, 2u);
  EXPECT_EQ(summary.resilience.quarantined, 1u);
  EXPECT_EQ(summary.resilience.retries, 1u);

  const std::uint64_t fingerprint =
      scenario_fingerprint(policy.label, runs[1], {});
  const CampaignJournal::History history = journal.history(fingerprint);
  EXPECT_TRUE(history.quarantined);
  EXPECT_EQ(history.deterministic_failures, 2u);
}

TEST_F(CampaignResilienceFixture, QuarantinedScenarioIsSkippedOnResume) {
  const std::vector<CampaignRun> runs = {poison_run()};
  CampaignPolicy policy;
  policy.max_attempts = 2;
  policy.quarantine_after = 2;
  {
    CampaignJournal journal(journal_path_);
    policy.journal = &journal;
    (void)run_validation_campaign(model, engine, runs, {}, 1, policy);
  }
  CampaignJournal journal(journal_path_);
  ASSERT_EQ(journal.recovery().quarantined, 1u);
  policy.journal = &journal;
  const CampaignSummary resumed =
      run_validation_campaign(model, engine, runs, {}, 1, policy);
  ASSERT_EQ(resumed.failures.size(), 1u);
  EXPECT_TRUE(resumed.failures[0].quarantined);
  // Skipped without burning a new attempt; the cause is the recorded one.
  EXPECT_EQ(resumed.resilience.attempts, 0u);
  EXPECT_FALSE(resumed.failures[0].error.empty());
}

TEST_F(CampaignResilienceFixture, RetryBudgetStopsBeforeQuarantineThreshold) {
  const std::vector<CampaignRun> runs = {poison_run()};
  CampaignPolicy policy;
  policy.max_attempts = 2;
  policy.quarantine_after = 10;
  const CampaignSummary summary =
      run_validation_campaign(model, engine, runs, {}, 1, policy);
  ASSERT_EQ(summary.failures.size(), 1u);
  EXPECT_FALSE(summary.failures[0].quarantined);
  EXPECT_EQ(summary.failures[0].attempts, 2u);
  EXPECT_EQ(summary.resilience.attempts, 2u);
  EXPECT_EQ(summary.resilience.retries, 1u);
  EXPECT_EQ(summary.resilience.quarantined, 0u);
}

TEST_F(CampaignResilienceFixture, BackoffIsDeterministicAndBounded) {
  const std::vector<CampaignRun> runs = {poison_run()};
  CampaignPolicy policy;
  policy.max_attempts = 3;
  policy.quarantine_after = 10;
  policy.backoff_initial_seconds = 0.002;
  policy.backoff_multiplier = 2.0;
  policy.backoff_max_seconds = 0.003;
  const CampaignSummary a =
      run_validation_campaign(model, engine, runs, {}, 1, policy);
  const CampaignSummary b =
      run_validation_campaign(model, engine, runs, {}, 1, policy);
  // Two sleeps happened (before retries 2 and 3), each jittered from
  // the same seeded stream: equal across reruns, bounded by the cap.
  EXPECT_GT(a.resilience.backoff_seconds, 0.0);
  EXPECT_LE(a.resilience.backoff_seconds, 2 * 0.003);
  EXPECT_DOUBLE_EQ(a.resilience.backoff_seconds, b.resilience.backoff_seconds);
}

TEST_F(CampaignResilienceFixture, ScenarioDeadlineSurfacesAsTransientFailure) {
  const std::vector<CampaignRun> runs = {healthy_run(8)};
  CampaignPolicy policy;
  policy.scenario_deadline_seconds = 1e-9;  // expires before the first check
  const CampaignSummary summary =
      run_validation_campaign(model, engine, runs, {}, 1, policy);
  ASSERT_EQ(summary.failures.size(), 1u);
  EXPECT_TRUE(summary.failures[0].transient);
  EXPECT_FALSE(summary.failures[0].quarantined);
  EXPECT_NE(summary.failures[0].error.find("cancelled"), std::string::npos)
      << summary.failures[0].error;
  EXPECT_EQ(summary.resilience.deadline_failures, 1u);
}

TEST_F(CampaignResilienceFixture, CampaignDeadlineFailsScenariosNotTheSweep) {
  const std::vector<CampaignRun> runs = {healthy_run(8), healthy_run(16),
                                         healthy_run(32)};
  CampaignPolicy policy;
  policy.campaign_deadline_seconds = 1e-9;
  policy.max_attempts = 3;  // expired budget must also suppress retries
  const CampaignSummary summary =
      run_validation_campaign(model, engine, runs, {}, 2, policy);
  // Every scenario failed structurally — the sweep itself returned.
  ASSERT_EQ(summary.failures.size(), runs.size());
  for (const CampaignFailure& failure : summary.failures) {
    EXPECT_TRUE(failure.transient);
    EXPECT_EQ(failure.attempts, 1u);  // no retries into a blown budget
  }
  EXPECT_EQ(summary.resilience.deadline_failures, runs.size());
  EXPECT_EQ(summary.resilience.retries, 0u);
}

TEST_F(CampaignResilienceFixture, CallerTokenCancelsTheCampaign) {
  util::CancellationToken token;
  token.cancel("user interrupt");
  ValidationConfig config;
  config.cancel = &token;
  const std::vector<CampaignRun> runs = {healthy_run(8)};
  const CampaignSummary summary =
      run_validation_campaign(model, engine, runs, config, 1);
  ASSERT_EQ(summary.failures.size(), 1u);
  EXPECT_NE(summary.failures[0].error.find("user interrupt"),
            std::string::npos);
}

TEST_F(CampaignResilienceFixture, FingerprintSeparatesScenariosAndLabels) {
  const CampaignRun a = healthy_run(8);
  const CampaignRun b = healthy_run(16);
  const ValidationConfig config;
  EXPECT_NE(scenario_fingerprint("t", a, config),
            scenario_fingerprint("t", b, config));
  EXPECT_NE(scenario_fingerprint("table5", a, config),
            scenario_fingerprint("table6", a, config));
  ValidationConfig other_seed = config;
  other_seed.noise_seed ^= 1;
  EXPECT_NE(scenario_fingerprint("t", a, config),
            scenario_fingerprint("t", a, other_seed));
  // A per-run fault plan changes the measured value, so the fingerprint.
  CampaignRun faulty = a;
  fault::MessageFaultModel lossy;
  lossy.drop_probability = 0.5;
  faulty.faults.message_faults.push_back(lossy);
  EXPECT_NE(scenario_fingerprint("t", a, config),
            scenario_fingerprint("t", faulty, config));
}

}  // namespace
}  // namespace krak::core
