#include "core/general_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "network/machine.hpp"
#include "util/error.hpp"

namespace krak::core {
namespace {

using mesh::Material;

/// Flat unit-cost table (1 us per cell everywhere).
CostTable flat_table() {
  CostTable table;
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (Material m : mesh::all_materials()) {
      table.add_sample(phase, m, 1.0, 1e-6);
    }
  }
  return table;
}

/// Table where HE gas costs twice as much as everything else.
CostTable he_heavy_table() {
  CostTable table;
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (Material m : mesh::all_materials()) {
      const double cost = (m == Material::kHEGas) ? 2e-6 : 1e-6;
      table.add_sample(phase, m, 1.0, cost);
    }
  }
  return table;
}

TEST(GeneralModel, BoundaryFacesIsSqrtCellsPerPe) {
  // Section 3.2: "each boundary between processors contains
  // sqrt(Cells/PEs) faces".
  EXPECT_DOUBLE_EQ(GeneralModel::boundary_faces(400, 4), 10.0);
  EXPECT_DOUBLE_EQ(GeneralModel::boundary_faces(204800, 512),
                   std::sqrt(400.0));
  EXPECT_THROW((void)GeneralModel::boundary_faces(0, 4),
               util::InvalidArgument);
}

TEST(GeneralModel, RatiosMustSumToOne) {
  EXPECT_THROW(GeneralModel(flat_table(), network::make_es45_qsnet(),
                            {0.5, 0.5, 0.5, 0.5}),
               util::InvalidArgument);
}

TEST(GeneralModel, HomogeneousTakesMostExpensiveMaterial) {
  // With HE gas 2x as costly, homogeneous mode must charge the HE rate
  // for the full subgrid.
  const GeneralModel model(he_heavy_table(), network::make_es45_qsnet());
  const auto report =
      model.predict(102400, 64, GeneralModelMode::kHomogeneous);
  const double cells_per_pe = 102400.0 / 64.0;
  EXPECT_NEAR(report.computation,
              simapp::kPhaseCount * cells_per_pe * 2e-6, 1e-9);
}

TEST(GeneralModel, HeterogeneousMixesMaterialCostsByRatio) {
  const GeneralModel model(he_heavy_table(), network::make_es45_qsnet());
  const auto report =
      model.predict(102400, 64, GeneralModelMode::kHeterogeneous);
  const double n = 102400.0 / 64.0;
  // Flat per-cell costs: sum_m ratio_m * n * c_m.
  const double expected_phase =
      n * (0.391 * 2e-6 + (0.172 + 0.203 + 0.234) * 1e-6);
  EXPECT_NEAR(report.computation, simapp::kPhaseCount * expected_phase, 1e-9);
}

TEST(GeneralModel, HomogeneousNeverCheaperThanHeterogeneousComputation) {
  // max over materials of a full-size subgrid >= ratio-weighted mix when
  // per-cell costs are flat in size.
  const GeneralModel model(he_heavy_table(), network::make_es45_qsnet());
  for (std::int32_t pes : {16, 64, 256}) {
    const auto homo = model.predict(204800, pes, GeneralModelMode::kHomogeneous);
    const auto het =
        model.predict(204800, pes, GeneralModelMode::kHeterogeneous);
    EXPECT_GE(homo.computation, het.computation - 1e-12) << pes;
  }
}

TEST(GeneralModel, HeterogeneousSendsMoreBoundaryExchangeMessages) {
  // Four per-material steps vs one: heterogeneous boundary exchange
  // must cost strictly more at equal total faces.
  const GeneralModel model(flat_table(), network::make_es45_qsnet());
  const auto homo = model.predict(204800, 256, GeneralModelMode::kHomogeneous);
  const auto het =
      model.predict(204800, 256, GeneralModelMode::kHeterogeneous);
  EXPECT_GT(het.boundary_exchange, homo.boundary_exchange);
}

TEST(GeneralModel, SingleProcessorHasNoCommunication) {
  const GeneralModel model(flat_table(), network::make_es45_qsnet());
  const auto report = model.predict(3200, 1, GeneralModelMode::kHomogeneous);
  EXPECT_DOUBLE_EQ(report.boundary_exchange, 0.0);
  EXPECT_DOUBLE_EQ(report.ghost_updates, 0.0);
  EXPECT_DOUBLE_EQ(report.broadcast, 0.0);
  EXPECT_DOUBLE_EQ(report.allreduce, 0.0);
  EXPECT_DOUBLE_EQ(report.gather, 0.0);
  EXPECT_GT(report.computation, 0.0);
}

TEST(GeneralModel, CollectivesGrowWithProcessorCount) {
  const GeneralModel model(flat_table(), network::make_es45_qsnet());
  const auto at64 = model.predict(204800, 64, GeneralModelMode::kHomogeneous);
  const auto at512 = model.predict(204800, 512, GeneralModelMode::kHomogeneous);
  EXPECT_GT(at512.allreduce, at64.allreduce);
  EXPECT_GT(at512.broadcast, at64.broadcast);
  EXPECT_GT(at512.gather, at64.gather);
}

TEST(GeneralModel, ComputationScalesInverselyWithPes) {
  const GeneralModel model(flat_table(), network::make_es45_qsnet());
  const auto at64 = model.predict(204800, 64, GeneralModelMode::kHomogeneous);
  const auto at128 = model.predict(204800, 128, GeneralModelMode::kHomogeneous);
  EXPECT_NEAR(at64.computation / at128.computation, 2.0, 1e-9);
}

TEST(GeneralModel, ComputeSpeedupScalesComputationOnly) {
  network::MachineConfig machine = network::make_es45_qsnet();
  machine.compute_speedup = 2.0;
  const GeneralModel fast(flat_table(), machine);
  const GeneralModel base(flat_table(), network::make_es45_qsnet());
  const auto f = fast.predict(204800, 128, GeneralModelMode::kHomogeneous);
  const auto b = base.predict(204800, 128, GeneralModelMode::kHomogeneous);
  EXPECT_NEAR(f.computation, b.computation / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.allreduce, b.allreduce);
}

TEST(GeneralModel, NeighborsConfigurable) {
  GeneralModel model(flat_table(), network::make_es45_qsnet());
  const auto four = model.predict(204800, 64, GeneralModelMode::kHomogeneous);
  model.set_neighbors_per_pe(8);
  const auto eight = model.predict(204800, 64, GeneralModelMode::kHomogeneous);
  EXPECT_NEAR(eight.boundary_exchange, 2.0 * four.boundary_exchange, 1e-12);
  EXPECT_NEAR(eight.ghost_updates, 2.0 * four.ghost_updates, 1e-12);
  EXPECT_THROW(model.set_neighbors_per_pe(-1), util::InvalidArgument);
}

TEST(GeneralModel, TwoProcessorsHaveOneNeighbor) {
  const GeneralModel model(flat_table(), network::make_es45_qsnet());
  const auto two = model.predict(204800, 2, GeneralModelMode::kHomogeneous);
  const auto many = model.predict(204800 * 8, 16, GeneralModelMode::kHomogeneous);
  // Same cells/PE and faces; the 2-PE config has 1 neighbor vs 4.
  EXPECT_NEAR(many.boundary_exchange / two.boundary_exchange, 4.0, 1e-9);
}

TEST(GeneralModel, RejectsBadArguments) {
  const GeneralModel model(flat_table(), network::make_es45_qsnet());
  EXPECT_THROW(
      (void)model.predict(0, 4, GeneralModelMode::kHomogeneous),
      util::InvalidArgument);
  EXPECT_THROW(
      (void)model.predict(100, 0, GeneralModelMode::kHomogeneous),
      util::InvalidArgument);
  EXPECT_THROW(
      (void)model.predict(100, 4096, GeneralModelMode::kHomogeneous),
      util::InvalidArgument);  // machine has 1024 PEs
}

TEST(GeneralModel, ModeNames) {
  EXPECT_EQ(general_model_mode_name(GeneralModelMode::kHomogeneous),
            "homogeneous");
  EXPECT_EQ(general_model_mode_name(GeneralModelMode::kHeterogeneous),
            "heterogeneous");
}

TEST(GeneralModel, CalibratedHeterogeneousOverpredictsAtScale) {
  // The paper's Section 5.2 shape: with a real (knee-bearing) calibrated
  // table, the heterogeneous flavor exceeds the homogeneous one at large
  // processor counts.
  const simapp::ComputationCostEngine engine;
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kMedium);
  const CostTable table = calibrate_from_input(engine, deck, {8, 64, 512, 4096});
  const GeneralModel model(table, network::make_es45_qsnet());
  const auto homo = model.predict(204800, 512, GeneralModelMode::kHomogeneous);
  const auto het =
      model.predict(204800, 512, GeneralModelMode::kHeterogeneous);
  EXPECT_GT(het.total(), homo.total());
}

}  // namespace
}  // namespace krak::core
