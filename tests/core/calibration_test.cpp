#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace krak::core {
namespace {

using mesh::Material;

TEST(ContrivedCalibration, CoversEveryPhaseAndMaterial) {
  const simapp::ComputationCostEngine engine;
  CalibrationConfig config;
  config.sample_sizes = {16, 256, 4096};
  const CostTable table = calibrate_contrived(engine, config);
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (Material m : mesh::all_materials()) {
      EXPECT_TRUE(table.has_samples(phase, m)) << "phase " << phase;
      EXPECT_EQ(table.sample_count(phase, m), 3u);
    }
  }
}

TEST(ContrivedCalibration, RecoversAsymptoticCostsAtSampledSizes) {
  // At a sampled size the table must match ground truth to within the
  // measurement noise.
  const simapp::ComputationCostEngine engine;
  CalibrationConfig config;
  config.sample_sizes = {65536};
  config.repetitions = 10;
  const CostTable table = calibrate_contrived(engine, config);
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (Material m : mesh::all_materials()) {
      const double truth = engine.per_cell_cost(phase, m, 65536);
      const double calibrated = table.per_cell(phase, m, 65536.0);
      EXPECT_NEAR(calibrated / truth, 1.0, 0.02)
          << "phase " << phase << " material " << mesh::material_short_name(m);
    }
  }
}

TEST(ContrivedCalibration, CapturesMaterialOrdering) {
  const simapp::ComputationCostEngine engine;
  CalibrationConfig config;
  config.sample_sizes = {4096};
  const CostTable table = calibrate_contrived(engine, config);
  // Phase 14 is material dependent: HE gas > aluminum > foam.
  EXPECT_GT(table.per_cell(14, Material::kHEGas, 4096.0),
            table.per_cell(14, Material::kAluminumInner, 4096.0));
  EXPECT_GT(table.per_cell(14, Material::kAluminumInner, 4096.0),
            table.per_cell(14, Material::kFoam, 4096.0));
}

TEST(ContrivedCalibration, CapturesKneeShape) {
  const simapp::ComputationCostEngine engine;
  CalibrationConfig config;
  config.sample_sizes = {4, 64, 1024, 16384};
  const CostTable table = calibrate_contrived(engine, config);
  // Per-cell cost at tiny sizes far exceeds the asymptote.
  EXPECT_GT(table.per_cell(2, Material::kFoam, 4.0),
            5.0 * table.per_cell(2, Material::kFoam, 16384.0));
}

TEST(ContrivedCalibration, RejectsBadConfig) {
  const simapp::ComputationCostEngine engine;
  CalibrationConfig empty;
  empty.sample_sizes = {};
  EXPECT_THROW((void)calibrate_contrived(engine, empty),
               util::InvalidArgument);
  CalibrationConfig zero_reps;
  zero_reps.repetitions = 0;
  EXPECT_THROW((void)calibrate_contrived(engine, zero_reps),
               util::InvalidArgument);
  CalibrationConfig fractional;
  fractional.sample_sizes = {0.5};
  EXPECT_THROW((void)calibrate_contrived(engine, fractional),
               util::InvalidArgument);
}

TEST(ContrivedCalibration, DeterministicForFixedSeed) {
  const simapp::ComputationCostEngine engine;
  CalibrationConfig config;
  config.sample_sizes = {64, 1024};
  const CostTable a = calibrate_contrived(engine, config);
  const CostTable b = calibrate_contrived(engine, config);
  EXPECT_DOUBLE_EQ(a.per_cell(2, Material::kHEGas, 100.0),
                   b.per_cell(2, Material::kHEGas, 100.0));
}

TEST(InputCalibration, CoversMaterialsPresentInDeck) {
  const simapp::ComputationCostEngine engine;
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const CostTable table = calibrate_from_input(engine, deck, {16});
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (Material m : mesh::all_materials()) {
      EXPECT_TRUE(table.has_samples(phase, m)) << "phase " << phase;
    }
  }
}

TEST(InputCalibration, RecoversPerCellCostsOnFlatRegion) {
  // At 3,200-cell subgrids (well past the knee) the linear solve must
  // recover the material-dependent asymptotes within a few percent.
  const simapp::ComputationCostEngine engine;
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kMedium);
  CalibrationConfig config;
  config.repetitions = 3;
  const CostTable table = calibrate_from_input(engine, deck, {64}, config);
  const double cells = 204800.0 / 64.0;
  for (std::int32_t phase : {6, 14}) {
    for (Material m : mesh::all_materials()) {
      const double truth =
          engine.per_cell_cost(phase, m, static_cast<std::int64_t>(cells));
      const double calibrated = table.per_cell(phase, m, cells);
      EXPECT_NEAR(calibrated / truth, 1.0, 0.10)
          << "phase " << phase << " material " << mesh::material_short_name(m);
    }
  }
}

TEST(InputCalibration, MultiplePeCountsBuildPiecewiseCurve) {
  const simapp::ComputationCostEngine engine;
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const CostTable table = calibrate_from_input(engine, deck, {8, 32, 128});
  EXPECT_EQ(table.sample_count(1, Material::kHEGas), 3u);
  // Smaller subgrids (larger PE counts) cost more per cell.
  EXPECT_GT(table.per_cell(2, Material::kHEGas, 25.0),
            table.per_cell(2, Material::kHEGas, 400.0));
}

TEST(InputCalibration, RequiresEnoughProcessors) {
  const simapp::ComputationCostEngine engine;
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  // 2 PEs < 4 materials: the linear system would be underdetermined.
  EXPECT_THROW((void)calibrate_from_input(engine, deck, {2}),
               util::InvalidArgument);
  EXPECT_THROW((void)calibrate_from_input(engine, deck, {}),
               util::InvalidArgument);
}

TEST(InputCalibration, CostsAreNonNegative) {
  const simapp::ComputationCostEngine engine;
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const CostTable table = calibrate_from_input(engine, deck, {16, 64});
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (Material m : mesh::all_materials()) {
      EXPECT_GE(table.per_cell(phase, m, 100.0), 0.0);
    }
  }
}

}  // namespace
}  // namespace krak::core
