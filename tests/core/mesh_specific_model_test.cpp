#include "core/mesh_specific_model.hpp"

#include <gtest/gtest.h>

#include "core/comm_model.hpp"
#include "core/comp_model.hpp"
#include "network/machine.hpp"
#include "partition/partition.hpp"
#include "util/error.hpp"

namespace krak::core {
namespace {

using mesh::Material;

CostTable flat_table(double cost) {
  CostTable table;
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (Material m : mesh::all_materials()) {
      table.add_sample(phase, m, 1.0, cost);
    }
  }
  return table;
}

partition::PartitionStats small_stats(std::int32_t pes) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, pes, partition::PartitionMethod::kMultilevel, 1);
  return partition::PartitionStats(deck, part);
}

TEST(MeshSpecificModel, TotalIsComputationPlusCommunication) {
  const MeshSpecificModel model(flat_table(1e-6), network::make_es45_qsnet());
  const auto stats = small_stats(16);
  const PredictionReport report = model.predict(stats);
  EXPECT_NEAR(report.total(), report.computation + report.communication(),
              1e-15);
  EXPECT_GT(report.computation, 0.0);
  EXPECT_GT(report.boundary_exchange, 0.0);
  EXPECT_GT(report.ghost_updates, 0.0);
  EXPECT_GT(report.allreduce, 0.0);
}

TEST(MeshSpecificModel, ComputationMatchesEquationThree) {
  const CostTable table = flat_table(2e-6);
  const MeshSpecificModel model(table, network::make_es45_qsnet());
  const auto stats = small_stats(8);
  const PredictionReport report = model.predict(stats);
  EXPECT_NEAR(report.computation, iteration_computation_time(table, stats),
              1e-12);
}

TEST(MeshSpecificModel, CommunicationMatchesComponentModels) {
  const network::MachineConfig machine = network::make_es45_qsnet();
  const MeshSpecificModel model(flat_table(1e-6), machine);
  const auto stats = small_stats(12);
  const PredictionReport report = model.predict(stats);
  const PointToPointBreakdown p2p = max_point_to_point(machine.network, stats);
  EXPECT_DOUBLE_EQ(report.boundary_exchange, p2p.boundary_exchange);
  EXPECT_DOUBLE_EQ(report.ghost_updates, p2p.ghost_updates);
  const network::CollectiveModel collectives(machine.network);
  EXPECT_DOUBLE_EQ(report.allreduce, collectives.iteration_allreduce(12));
}

TEST(MeshSpecificModel, SingleProcessorHasNoP2P) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part(1, std::vector<partition::PeId>(3200, 0));
  const partition::PartitionStats stats(deck, part);
  const MeshSpecificModel model(flat_table(1e-6), network::make_es45_qsnet());
  const PredictionReport report = model.predict(stats);
  EXPECT_DOUBLE_EQ(report.boundary_exchange, 0.0);
  EXPECT_DOUBLE_EQ(report.ghost_updates, 0.0);
  EXPECT_DOUBLE_EQ(report.communication(), 0.0);  // log(1) = 0 collectives
}

TEST(MeshSpecificModel, CompueSpeedupScalesComputationOnly) {
  network::MachineConfig fast_machine = network::make_es45_qsnet();
  fast_machine.compute_speedup = 4.0;
  const MeshSpecificModel fast(flat_table(1e-6), fast_machine);
  const MeshSpecificModel base(flat_table(1e-6), network::make_es45_qsnet());
  const auto stats = small_stats(16);
  const auto f = fast.predict(stats);
  const auto b = base.predict(stats);
  EXPECT_NEAR(f.computation, b.computation / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.boundary_exchange, b.boundary_exchange);
}

TEST(MeshSpecificModel, MachineTooSmallRejected) {
  network::MachineConfig tiny = network::make_es45_qsnet();
  tiny.nodes = 2;
  tiny.pes_per_node = 2;
  const MeshSpecificModel model(flat_table(1e-6), tiny);
  EXPECT_THROW((void)model.predict(small_stats(16)), util::InvalidArgument);
}

TEST(MeshSpecificModel, ReportToStringMentionsComponents) {
  const MeshSpecificModel model(flat_table(1e-6), network::make_es45_qsnet());
  const std::string text = model.predict(small_stats(8)).to_string();
  EXPECT_NE(text.find("computation"), std::string::npos);
  EXPECT_NE(text.find("boundary exchange"), std::string::npos);
  EXPECT_NE(text.find("allreduces"), std::string::npos);
}

}  // namespace
}  // namespace krak::core
