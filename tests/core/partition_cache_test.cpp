#include "core/partition_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "mesh/deck.hpp"
#include "util/cancellation.hpp"
#include "util/thread_pool.hpp"

namespace krak::core {
namespace {

const mesh::InputDeck& small_deck() {
  static const mesh::InputDeck deck =
      mesh::make_standard_deck(mesh::DeckSize::kSmall);
  return deck;
}

TEST(PartitionCache, SecondLookupHitsAndSharesTheEntry) {
  PartitionCache cache;
  const auto first = cache.get(small_deck(), 16,
                               partition::PartitionMethod::kMultilevel, 1);
  const auto second = cache.get(small_deck(), 16,
                                partition::PartitionMethod::kMultilevel, 1);
  EXPECT_EQ(first.get(), second.get());  // one shared computation
  EXPECT_EQ(first->partition.parts(), 16);
  EXPECT_EQ(first->stats->parts(), 16);
  const PartitionCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hits, 1u);
}

TEST(PartitionCache, KeyDistinguishesPesMethodAndSeed) {
  PartitionCache cache;
  const auto base = cache.get(small_deck(), 16,
                              partition::PartitionMethod::kMultilevel, 1);
  const auto other_pes = cache.get(small_deck(), 32,
                                   partition::PartitionMethod::kMultilevel, 1);
  const auto other_seed = cache.get(small_deck(), 16,
                                    partition::PartitionMethod::kMultilevel, 2);
  const auto other_method =
      cache.get(small_deck(), 16, partition::PartitionMethod::kRcb, 1);
  EXPECT_NE(base.get(), other_pes.get());
  EXPECT_NE(base.get(), other_seed.get());
  EXPECT_NE(base.get(), other_method.get());
  EXPECT_EQ(cache.counters().misses, 4u);
  EXPECT_EQ(cache.counters().hits, 0u);
}

TEST(PartitionCache, DeckContentDefeatsNameAliasing) {
  // Two decks with the same name but different material layouts must
  // not share an entry: the key fingerprints the deck's content.
  const mesh::InputDeck a = mesh::make_uniform_deck(40, 20, mesh::Material::kFoam);
  const mesh::InputDeck b(a.name(), a.grid(),
                          std::vector<mesh::Material>(
                              a.materials().size(), mesh::Material::kHEGas),
                          a.detonator());
  PartitionCache cache;
  const auto entry_a =
      cache.get(a, 8, partition::PartitionMethod::kMultilevel, 1);
  const auto entry_b =
      cache.get(b, 8, partition::PartitionMethod::kMultilevel, 1);
  EXPECT_NE(entry_a.get(), entry_b.get());
  EXPECT_EQ(cache.counters().misses, 2u);
}

TEST(PartitionCache, MatchesDirectPartitioning) {
  PartitionCache cache;
  const auto cached = cache.get(small_deck(), 16,
                                partition::PartitionMethod::kMultilevel, 1);
  const partition::Partition direct = partition::partition_deck(
      small_deck(), 16, partition::PartitionMethod::kMultilevel, 1);
  EXPECT_EQ(cached->partition.assignment(), direct.assignment());
}

TEST(PartitionCache, ClearForcesRecomputation) {
  PartitionCache cache;
  const auto first = cache.get(small_deck(), 16,
                               partition::PartitionMethod::kMultilevel, 1);
  cache.clear();
  const auto second = cache.get(small_deck(), 16,
                                partition::PartitionMethod::kMultilevel, 1);
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(cache.counters().misses, 2u);
  // The evicted entry stays alive while someone holds it.
  EXPECT_EQ(first->partition.assignment(), second->partition.assignment());
}

// Thread-pool stress: many workers requesting the same configuration
// concurrently must converge on one shared computation (and one miss).
// This is the campaign's actual concurrency pattern, and doubles as the
// TSan coverage of the cache's locking.
TEST(PartitionCache, ConcurrentRequestsShareOneComputation) {
  PartitionCache cache;
  constexpr std::size_t kRequests = 64;
  std::vector<std::shared_ptr<const PartitionedDeck>> results(kRequests);
  util::ThreadPool pool(8);
  pool.parallel_for(kRequests, [&](std::size_t i) {
    // Two interleaved keys so hits and misses race on the same table.
    const std::uint64_t seed = 1 + (i % 2);
    results[i] = cache.get(small_deck(), 16,
                           partition::PartitionMethod::kMultilevel, seed);
  });
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_NE(results[i], nullptr);
    EXPECT_EQ(results[i].get(), results[i % 2].get());
  }
  const PartitionCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.misses, 2u);
  EXPECT_EQ(counters.hits, kRequests - 2u);
}

TEST(PartitionCache, CancelledMissSurfacesAndEvicts) {
  PartitionCache cache;
  util::CancellationToken token;
  token.cancel("deadline blown");
  EXPECT_THROW((void)cache.get(small_deck(), 16,
                               partition::PartitionMethod::kMultilevel, 1,
                               /*threads=*/1, &token),
               util::CancelledError);
  // The failed entry was evicted, not poisoned: a later request without
  // the token recomputes and succeeds.
  const auto entry = cache.get(small_deck(), 16,
                               partition::PartitionMethod::kMultilevel, 1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->partition.parts(), 16);
  EXPECT_EQ(cache.counters().misses, 2u);
}

// Failure eviction under concurrency: one owner fails (cancelled token)
// while many waiters are parked on its future. Every waiter must see
// the owner's exception, the entry must be evicted, and a subsequent
// wave must recompute successfully — a failure may cost a retry but can
// never poison the configuration. TSan coverage of the erase/retry race.
TEST(PartitionCache, ConcurrentWaitersSeeOwnerFailureThenRetrySucceeds) {
  PartitionCache cache;
  constexpr std::size_t kRequests = 32;
  util::CancellationToken cancelled;
  cancelled.cancel("scenario budget exceeded");
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> successes{0};
  util::ThreadPool pool(8);
  pool.parallel_for(kRequests, [&](std::size_t i) {
    (void)i;
    try {
      // Every request carries the tripped token, so whichever thread
      // wins ownership fails and the rest inherit that exception (or
      // become owners themselves after the eviction and fail too).
      const auto entry =
          cache.get(small_deck(), 16, partition::PartitionMethod::kMultilevel,
                    7, /*threads=*/1, &cancelled);
      if (entry != nullptr) successes.fetch_add(1);
    } catch (const util::CancelledError&) {
      failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), kRequests);
  EXPECT_EQ(successes.load(), 0u);

  // The configuration is not poisoned: a clean wave converges on one
  // shared recomputation.
  std::vector<std::shared_ptr<const PartitionedDeck>> results(kRequests);
  pool.parallel_for(kRequests, [&](std::size_t i) {
    results[i] = cache.get(small_deck(), 16,
                           partition::PartitionMethod::kMultilevel, 7);
  });
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_NE(results[i], nullptr);
    EXPECT_EQ(results[i].get(), results[0].get());
  }
}

}  // namespace
}  // namespace krak::core
