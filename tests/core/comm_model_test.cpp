#include "core/comm_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "network/msgmodel.hpp"
#include "util/error.hpp"

namespace krak::core {
namespace {

/// Unit-latency, zero-bandwidth network: each message costs exactly 1,
/// so Equation (5) degenerates to a message count.
network::MessageCostModel counting_network() {
  return network::make_hockney_model(1.0, 1e30);
}

TEST(BoundaryExchange, CountsSixMessagesPerMaterialPlusFinal) {
  // Equation (5) with three materials present: 3 steps + final = 24
  // messages.
  const auto net = counting_network();
  const std::vector<double> faces = {3.0, 4.0, 3.0};
  EXPECT_NEAR(boundary_exchange_time(net, faces), 24.0, 1e-9);
}

TEST(BoundaryExchange, ZeroFaceMaterialsContributeNothing) {
  const auto net = counting_network();
  const std::vector<double> some = {5.0, 0.0, 0.0};
  EXPECT_NEAR(boundary_exchange_time(net, some), 12.0, 1e-9);  // 1 step + final
  const std::vector<double> none = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(boundary_exchange_time(net, none), 0.0);
}

TEST(BoundaryExchange, Table3MessageSizes) {
  // Reproduce Table 3 exactly with a bandwidth-only network
  // (1 byte = 1 second, zero latency): total time = total bytes.
  const auto net = network::make_hockney_model(0.0, 1.0);
  const std::vector<double> faces = {3.0, 4.0, 3.0};        // HE, Al, foam
  const std::vector<double> multi_nodes = {1.0, 3.0, 2.0};  // Table 3
  // Bytes: HE 2*48+4*36 = 240; Al 2*84+4*48 = 360; foam 2*60+4*36 = 264;
  // final 6*120 = 720. Total 1584.
  EXPECT_NEAR(boundary_exchange_time(net, faces, multi_nodes), 1584.0, 1e-9);
}

TEST(BoundaryExchange, AugmentationOnlyAffectsFirstTwoMessages) {
  const auto net = network::make_hockney_model(0.0, 1.0);
  const std::vector<double> faces = {10.0};
  const std::vector<double> nodes = {5.0};
  const double base = boundary_exchange_time(net, faces);
  const double augmented = boundary_exchange_time(net, faces, nodes);
  // Two messages gain 5 * 12 bytes each.
  EXPECT_NEAR(augmented - base, 2.0 * 5.0 * 12.0, 1e-9);
}

TEST(BoundaryExchange, SpanLengthMismatchRejected) {
  const auto net = counting_network();
  const std::vector<double> faces = {1.0, 2.0};
  const std::vector<double> nodes = {1.0};
  EXPECT_THROW((void)boundary_exchange_time(net, faces, nodes),
               util::InvalidArgument);
}

TEST(BoundaryExchange, NegativeCountsRejected) {
  const auto net = counting_network();
  const std::vector<double> faces = {-1.0};
  EXPECT_THROW((void)boundary_exchange_time(net, faces),
               util::InvalidArgument);
}

TEST(GhostUpdate, SumsLocalAndRemoteMessages) {
  // Equations (6)-(7): Tmsg(b*N_L) + Tmsg(b*N_R).
  const auto net = network::make_hockney_model(0.5, 1.0);
  // 8 bytes per node, 10 local + 11 remote: 0.5+80 + 0.5+88 = 169.
  EXPECT_NEAR(ghost_update_time(net, 8.0, 10.0, 11.0), 169.0, 1e-9);
}

TEST(GhostUpdate, SixteenByteUpdatesCostMore) {
  const auto net = network::make_qsnet1_model();
  EXPECT_GT(ghost_update_time(net, 16.0, 50.0, 50.0),
            ghost_update_time(net, 8.0, 50.0, 50.0));
}

TEST(GhostUpdate, RejectsNegativeArguments) {
  const auto net = counting_network();
  EXPECT_THROW((void)ghost_update_time(net, -8.0, 1.0, 1.0),
               util::InvalidArgument);
  EXPECT_THROW((void)ghost_update_time(net, 8.0, -1.0, 1.0),
               util::InvalidArgument);
}

TEST(SubdomainP2P, CountsMessagesOverNeighbors) {
  const auto net = counting_network();
  partition::SubdomainInfo sub;
  sub.pe = 0;
  partition::NeighborBoundary b1;
  b1.neighbor = 1;
  b1.faces_per_group = {3, 0, 0};
  b1.total_faces = 3;
  b1.ghost_nodes_local = 2;
  b1.ghost_nodes_remote = 2;
  partition::NeighborBoundary b2 = b1;
  b2.neighbor = 2;
  sub.neighbors = {b1, b2};

  const PointToPointBreakdown breakdown = subdomain_point_to_point(net, sub);
  // Per neighbor: boundary exchange = 12 messages (1 group + final);
  // ghost updates = 3 phases x 2 messages = 6.
  EXPECT_NEAR(breakdown.boundary_exchange, 24.0, 1e-9);
  EXPECT_NEAR(breakdown.ghost_updates, 12.0, 1e-9);
  EXPECT_NEAR(breakdown.total(), 36.0, 1e-9);
}

TEST(SubdomainP2P, UncombinedAluminumAddsAStep) {
  // Disabling the aluminum merge splits group 1 into two materials,
  // adding six messages per neighbor whose boundary has aluminum faces.
  const auto net = counting_network();
  partition::SubdomainInfo sub;
  sub.pe = 0;
  partition::NeighborBoundary boundary;
  boundary.neighbor = 1;
  boundary.faces_per_group = {2, 4, 2};
  boundary.total_faces = 8;
  sub.neighbors = {boundary};
  const double combined =
      subdomain_point_to_point(net, sub, /*combine_aluminum=*/true)
          .boundary_exchange;
  const double split =
      subdomain_point_to_point(net, sub, /*combine_aluminum=*/false)
          .boundary_exchange;
  EXPECT_NEAR(split - combined, 6.0, 1e-9);
}

TEST(SubdomainP2P, GhostAugmentationToggle) {
  const auto net = network::make_hockney_model(0.0, 1.0);
  partition::SubdomainInfo sub;
  sub.pe = 0;
  partition::NeighborBoundary boundary;
  boundary.neighbor = 1;
  boundary.faces_per_group = {4, 0, 0};
  boundary.total_faces = 4;
  boundary.multi_material_ghost_nodes = 3;
  boundary.multi_material_nodes_per_group = {3, 0, 0};
  sub.neighbors = {boundary};
  const double with_aug =
      subdomain_point_to_point(net, sub, true, /*include_ghost_augmentation=*/true)
          .boundary_exchange;
  const double without_aug =
      subdomain_point_to_point(net, sub, true, false).boundary_exchange;
  EXPECT_NEAR(with_aug - without_aug, 2.0 * 3.0 * 12.0, 1e-9);
}

TEST(MaxP2P, TakesComponentwiseMaximum) {
  const auto net = counting_network();
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 9, partition::PartitionMethod::kMultilevel, 1);
  const partition::PartitionStats stats(deck, part);
  const PointToPointBreakdown max = max_point_to_point(net, stats);
  for (const partition::SubdomainInfo& sub : stats.subdomains()) {
    const PointToPointBreakdown b = subdomain_point_to_point(net, sub);
    EXPECT_LE(b.boundary_exchange, max.boundary_exchange + 1e-12);
    EXPECT_LE(b.ghost_updates, max.ghost_updates + 1e-12);
  }
}

}  // namespace
}  // namespace krak::core
