#include "core/optimizer.hpp"

#include <gtest/gtest.h>

#include "network/machine.hpp"
#include "util/error.hpp"

namespace krak::core {
namespace {

using mesh::Material;

CostTable flat_table(double cost) {
  CostTable table;
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (Material m : mesh::all_materials()) {
      table.add_sample(phase, m, 1.0, cost);
    }
  }
  return table;
}

TEST(Optimizer, FastestConfigurationBeatsEndpoints) {
  const KrakModel model(flat_table(1e-6), network::make_es45_qsnet());
  const Configuration best = find_fastest_configuration(model, 204800);
  EXPECT_GE(best.pes, 1);
  EXPECT_LE(best.pes, 1024);
  const double at1 =
      model.predict_general(204800, 1, GeneralModelMode::kHomogeneous).total();
  EXPECT_LE(best.iteration_time, at1);
  EXPECT_GT(best.speedup, 1.0);
}

TEST(Optimizer, SmallProblemSaturatesEarlierThanLarge) {
  const KrakModel model(flat_table(1e-6), network::make_es45_qsnet());
  const Configuration small = find_fastest_configuration(model, 3200);
  const Configuration large = find_fastest_configuration(model, 819200);
  EXPECT_LT(small.pes, large.pes);
}

TEST(Optimizer, MaxPesIsRespected) {
  const KrakModel model(flat_table(1e-6), network::make_es45_qsnet());
  const Configuration best = find_fastest_configuration(
      model, 819200, GeneralModelMode::kHomogeneous, 64);
  EXPECT_LE(best.pes, 64);
}

TEST(Optimizer, NeverMoreProcessorsThanCells) {
  const KrakModel model(flat_table(1e-6), network::make_es45_qsnet());
  const Configuration best = find_fastest_configuration(model, 12);
  EXPECT_LE(best.pes, 12);
}

TEST(Optimizer, EfficiencyLimitMeetsTarget) {
  const KrakModel model(flat_table(1e-6), network::make_es45_qsnet());
  const Configuration limit = find_efficiency_limit(model, 204800, 0.8);
  EXPECT_GE(limit.efficiency, 0.8);
  // Going further must violate the target... compare with a config one
  // step past the limit when one exists.
  if (limit.pes < 1024) {
    const double serial =
        model.predict_general(204800, 1, GeneralModelMode::kHomogeneous)
            .total();
    // All larger counts were scanned; the optimizer picked the largest
    // meeting the target, so at least one larger count fails it (weak
    // check: the very last count fails or equals the limit).
    const double t1024 =
        model.predict_general(204800, 1024, GeneralModelMode::kHomogeneous)
            .total();
    const double eff1024 = serial / t1024 / 1024.0;
    EXPECT_LT(eff1024, 0.8);
  }
}

TEST(Optimizer, TighterTargetMeansFewerProcessors) {
  const KrakModel model(flat_table(1e-6), network::make_es45_qsnet());
  const Configuration loose = find_efficiency_limit(model, 204800, 0.5);
  const Configuration tight = find_efficiency_limit(model, 204800, 0.95);
  EXPECT_LE(tight.pes, loose.pes);
}

TEST(Optimizer, EfficiencyTargetValidated) {
  const KrakModel model(flat_table(1e-6), network::make_es45_qsnet());
  EXPECT_THROW((void)find_efficiency_limit(model, 204800, 0.0),
               util::InvalidArgument);
  EXPECT_THROW((void)find_efficiency_limit(model, 204800, 1.5),
               util::InvalidArgument);
}

TEST(Optimizer, TimeToSolutionScalesWithIterations) {
  const KrakModel model(flat_table(1e-6), network::make_es45_qsnet());
  const double one = predict_time_to_solution(model, 204800, 128, 1);
  const double thousand = predict_time_to_solution(model, 204800, 128, 1000);
  EXPECT_NEAR(thousand, 1000.0 * one, 1e-9);
  EXPECT_DOUBLE_EQ(predict_time_to_solution(model, 204800, 128, 0), 0.0);
  EXPECT_THROW((void)predict_time_to_solution(model, 204800, 128, -1),
               util::InvalidArgument);
}

}  // namespace
}  // namespace krak::core
