#include "core/cost_table.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/error.hpp"

namespace krak::core {
namespace {

using mesh::Material;

TEST(CostTable, EmptyPairThrowsOnQuery) {
  const CostTable table;
  EXPECT_FALSE(table.has_samples(1, Material::kHEGas));
  EXPECT_THROW((void)table.per_cell(1, Material::kHEGas, 100.0),
               util::KrakError);
}

TEST(CostTable, SingleSampleIsConstant) {
  CostTable table;
  table.add_sample(3, Material::kFoam, 1000.0, 2e-6);
  EXPECT_TRUE(table.has_samples(3, Material::kFoam));
  EXPECT_EQ(table.sample_count(3, Material::kFoam), 1u);
  EXPECT_DOUBLE_EQ(table.per_cell(3, Material::kFoam, 10.0), 2e-6);
  EXPECT_DOUBLE_EQ(table.per_cell(3, Material::kFoam, 1e6), 2e-6);
}

TEST(CostTable, InterpolatesLinearlyInCells) {
  CostTable table;
  table.add_sample(1, Material::kHEGas, 100.0, 10e-6);
  table.add_sample(1, Material::kHEGas, 300.0, 2e-6);
  EXPECT_DOUBLE_EQ(table.per_cell(1, Material::kHEGas, 200.0), 6e-6);
}

TEST(CostTable, ClampsOutsideSampledRange) {
  CostTable table;
  table.add_sample(1, Material::kHEGas, 100.0, 10e-6);
  table.add_sample(1, Material::kHEGas, 1000.0, 2e-6);
  EXPECT_DOUBLE_EQ(table.per_cell(1, Material::kHEGas, 10.0), 10e-6);
  EXPECT_DOUBLE_EQ(table.per_cell(1, Material::kHEGas, 1e8), 2e-6);
}

TEST(CostTable, PhaseAndMaterialAreIndependentSlots) {
  CostTable table;
  table.add_sample(1, Material::kHEGas, 100.0, 1e-6);
  table.add_sample(2, Material::kHEGas, 100.0, 2e-6);
  table.add_sample(1, Material::kFoam, 100.0, 3e-6);
  EXPECT_DOUBLE_EQ(table.per_cell(1, Material::kHEGas, 100.0), 1e-6);
  EXPECT_DOUBLE_EQ(table.per_cell(2, Material::kHEGas, 100.0), 2e-6);
  EXPECT_DOUBLE_EQ(table.per_cell(1, Material::kFoam, 100.0), 3e-6);
  EXPECT_FALSE(table.has_samples(2, Material::kFoam));
}

TEST(CostTable, SubgridTimeSumsPerMaterialContributions) {
  // Equation (2)'s inner sum: n_m * T(phase, m, n_total).
  CostTable table;
  for (Material m : mesh::all_materials()) {
    table.add_sample(4, m, 10.0, 1e-6 * (1.0 + mesh::material_index(m)));
  }
  std::array<std::int64_t, mesh::kMaterialCount> counts = {10, 20, 30, 40};
  const double expected =
      10 * 1e-6 + 20 * 2e-6 + 30 * 3e-6 + 40 * 4e-6;
  EXPECT_NEAR(table.subgrid_time(4, counts), expected, 1e-15);
}

TEST(CostTable, SubgridTimeEvaluatesAtTotalSize) {
  // |Cells_j| in Equation (2) is the processor's total subgrid size.
  CostTable table;
  table.add_sample(1, Material::kHEGas, 100.0, 10e-6);
  table.add_sample(1, Material::kHEGas, 200.0, 2e-6);
  table.add_sample(1, Material::kFoam, 100.0, 10e-6);
  table.add_sample(1, Material::kFoam, 200.0, 2e-6);
  // 100 HE + 100 foam = 200 total -> both evaluated at 200.
  std::array<std::int64_t, mesh::kMaterialCount> counts = {100, 0, 100, 0};
  EXPECT_NEAR(table.subgrid_time(1, counts), 200.0 * 2e-6, 1e-15);
}

TEST(CostTable, EmptySubgridIsFree) {
  const CostTable table;
  const std::array<std::int64_t, mesh::kMaterialCount> zeros{};
  EXPECT_DOUBLE_EQ(table.subgrid_time(7, zeros), 0.0);
  EXPECT_DOUBLE_EQ(table.uniform_subgrid_time(7, Material::kFoam, 0.0), 0.0);
}

TEST(CostTable, AbsentMaterialWithZeroCellsIgnored) {
  CostTable table;
  table.add_sample(1, Material::kHEGas, 100.0, 1e-6);
  // Foam has no samples but also no cells: must not throw.
  std::array<std::int64_t, mesh::kMaterialCount> counts = {50, 0, 0, 0};
  EXPECT_NO_THROW((void)table.subgrid_time(1, counts));
}

TEST(CostTable, MixedSubgridTimeAcceptsFractionalCells) {
  CostTable table;
  for (Material m : mesh::all_materials()) {
    table.add_sample(1, m, 10.0, 2e-6);
  }
  std::array<double, mesh::kMaterialCount> fractional = {39.1, 17.2, 20.3,
                                                         23.4};
  EXPECT_NEAR(table.mixed_subgrid_time(1, fractional), 100.0 * 2e-6, 1e-12);
}

TEST(CostTable, RejectsInvalidArguments) {
  CostTable table;
  EXPECT_THROW(table.add_sample(0, Material::kFoam, 10.0, 1e-6),
               util::InvalidArgument);
  EXPECT_THROW(table.add_sample(16, Material::kFoam, 10.0, 1e-6),
               util::InvalidArgument);
  EXPECT_THROW(table.add_sample(1, Material::kFoam, 0.0, 1e-6),
               util::InvalidArgument);
  EXPECT_THROW(table.add_sample(1, Material::kFoam, 10.0, -1e-6),
               util::InvalidArgument);
  table.add_sample(1, Material::kFoam, 10.0, 1e-6);
  EXPECT_THROW((void)table.per_cell(1, Material::kFoam, 0.0),
               util::InvalidArgument);
  std::array<std::int64_t, mesh::kMaterialCount> negative = {-1, 0, 0, 0};
  EXPECT_THROW((void)table.subgrid_time(1, negative), util::InvalidArgument);
}

TEST(CostTable, UniformSubgridTimeIsCellsTimesPerCell) {
  CostTable table;
  table.add_sample(5, Material::kAluminumInner, 100.0, 3e-6);
  table.add_sample(5, Material::kAluminumInner, 1000.0, 1e-6);
  const double cells = 550.0;
  EXPECT_NEAR(table.uniform_subgrid_time(5, Material::kAluminumInner, cells),
              cells * table.per_cell(5, Material::kAluminumInner, cells),
              1e-15);
}

}  // namespace
}  // namespace krak::core
