#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/calibration.hpp"
#include "network/machine.hpp"
#include "util/error.hpp"

namespace krak::core {
namespace {

struct CampaignFixture : public ::testing::Test {
  simapp::ComputationCostEngine engine;
  KrakModel model{
      calibrate_from_input(engine,
                           mesh::make_standard_deck(mesh::DeckSize::kSmall),
                           {8, 32, 128}),
      network::make_es45_qsnet()};
};

TEST_F(CampaignFixture, ProducesOnePointPerRunInOrder) {
  const std::vector<CampaignRun> runs = {
      {mesh::DeckSize::kSmall, 8, CampaignRun::Flavor::kMeshSpecific},
      {mesh::DeckSize::kSmall, 16, CampaignRun::Flavor::kGeneralHomogeneous},
      {mesh::DeckSize::kSmall, 32, CampaignRun::Flavor::kGeneralHeterogeneous},
  };
  const CampaignSummary summary =
      run_validation_campaign(model, engine, runs, {}, 2);
  ASSERT_EQ(summary.points.size(), 3u);
  EXPECT_EQ(summary.points[0].pes, 8);
  EXPECT_EQ(summary.points[1].pes, 16);
  EXPECT_EQ(summary.points[2].pes, 32);
  for (const ValidationPoint& point : summary.points) {
    EXPECT_GT(point.measured, 0.0);
    EXPECT_GT(point.predicted, 0.0);
  }
}

TEST_F(CampaignFixture, SummaryStatisticsConsistent) {
  const std::vector<CampaignRun> runs = {
      {mesh::DeckSize::kSmall, 8, CampaignRun::Flavor::kGeneralHomogeneous},
      {mesh::DeckSize::kSmall, 64, CampaignRun::Flavor::kGeneralHomogeneous},
  };
  const CampaignSummary summary =
      run_validation_campaign(model, engine, runs);
  double worst = 0.0;
  double sum = 0.0;
  for (const ValidationPoint& point : summary.points) {
    worst = std::max(worst, std::abs(point.error()));
    sum += std::abs(point.error());
  }
  EXPECT_DOUBLE_EQ(summary.worst_abs_error, worst);
  EXPECT_DOUBLE_EQ(summary.mean_abs_error, sum / 2.0);
  EXPECT_GE(summary.worst_abs_error, summary.mean_abs_error);
}

TEST_F(CampaignFixture, ParallelAndSerialAgree) {
  const std::vector<CampaignRun> runs = {
      {mesh::DeckSize::kSmall, 8, CampaignRun::Flavor::kMeshSpecific},
      {mesh::DeckSize::kSmall, 16, CampaignRun::Flavor::kMeshSpecific},
      {mesh::DeckSize::kSmall, 32, CampaignRun::Flavor::kMeshSpecific},
      {mesh::DeckSize::kSmall, 64, CampaignRun::Flavor::kMeshSpecific},
  };
  const CampaignSummary serial =
      run_validation_campaign(model, engine, runs, {}, 1);
  const CampaignSummary parallel =
      run_validation_campaign(model, engine, runs, {}, 8);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.points[i].measured, parallel.points[i].measured);
    EXPECT_DOUBLE_EQ(serial.points[i].predicted, parallel.points[i].predicted);
  }
}

TEST_F(CampaignFixture, EmptyCampaignRejected) {
  EXPECT_THROW((void)run_validation_campaign(model, engine, {}),
               util::InvalidArgument);
}

TEST_F(CampaignFixture, SummaryRendersAsTable) {
  const std::vector<CampaignRun> runs = {
      {mesh::DeckSize::kSmall, 8, CampaignRun::Flavor::kGeneralHomogeneous},
  };
  const std::string text =
      run_validation_campaign(model, engine, runs).to_string();
  EXPECT_NE(text.find("Problem"), std::string::npos);
  EXPECT_NE(text.find("worst |error|"), std::string::npos);
}

TEST_F(CampaignFixture, ObservabilityFieldsAreConsistent) {
  const std::vector<CampaignRun> runs = {
      {mesh::DeckSize::kSmall, 8, CampaignRun::Flavor::kGeneralHomogeneous},
      {mesh::DeckSize::kSmall, 16, CampaignRun::Flavor::kGeneralHomogeneous},
      {mesh::DeckSize::kSmall, 32, CampaignRun::Flavor::kGeneralHomogeneous},
  };
  const CampaignSummary summary =
      run_validation_campaign(model, engine, runs, {}, 2);
  EXPECT_GT(summary.wall_seconds, 0.0);
  ASSERT_EQ(summary.run_wall_seconds.size(), runs.size());
  double busy = 0.0;
  for (const double run_wall : summary.run_wall_seconds) {
    EXPECT_GT(run_wall, 0.0);
    EXPECT_LE(run_wall, summary.wall_seconds * 1.01);
    busy += run_wall;
  }
  EXPECT_EQ(summary.threads_used, 2u);
  EXPECT_GT(summary.thread_utilization, 0.0);
  EXPECT_LE(summary.thread_utilization, 1.0);
  // utilization = busy / (wall * threads), clamped to 1.
  EXPECT_NEAR(summary.thread_utilization,
              std::min(1.0, busy / (summary.wall_seconds * 2.0)), 1e-9);
}

TEST_F(CampaignFixture, ThreadsUsedNeverExceedsRunCount) {
  const std::vector<CampaignRun> runs = {
      {mesh::DeckSize::kSmall, 8, CampaignRun::Flavor::kGeneralHomogeneous},
  };
  const CampaignSummary summary =
      run_validation_campaign(model, engine, runs, {}, 8);
  EXPECT_EQ(summary.threads_used, 1u);
}

TEST_F(CampaignFixture, PoisonedRunIsRecordedAndSweepContinues) {
  // A run with an invalid processor count throws inside a pool worker;
  // the campaign must record that scenario under failures (naming it)
  // and still measure every other scenario instead of aborting the
  // sweep.
  const std::vector<CampaignRun> runs = {
      {mesh::DeckSize::kSmall, 8, CampaignRun::Flavor::kGeneralHomogeneous},
      {mesh::DeckSize::kSmall, -1, CampaignRun::Flavor::kGeneralHomogeneous},
      {mesh::DeckSize::kSmall, 16, CampaignRun::Flavor::kGeneralHomogeneous},
  };
  const CampaignSummary summary =
      run_validation_campaign(model, engine, runs, {}, 2);
  EXPECT_TRUE(summary.degraded());
  ASSERT_EQ(summary.failures.size(), 1u);
  EXPECT_EQ(summary.failures[0].run_index, 1u);
  EXPECT_EQ(summary.failures[0].scenario, campaign_run_name(runs[1]));
  EXPECT_FALSE(summary.failures[0].error.empty());
  EXPECT_FALSE(summary.failures[0].has_sim_failure);
  // The healthy scenarios still produced measurements and aggregates.
  ASSERT_EQ(summary.points.size(), 3u);
  EXPECT_GT(summary.points[0].measured, 0.0);
  EXPECT_GT(summary.points[2].measured, 0.0);
  EXPECT_GT(summary.mean_abs_error, 0.0);
  EXPECT_TRUE(std::isfinite(summary.mean_abs_error));
  // The rendered table names the failed scenario.
  const std::string text = summary.to_string();
  EXPECT_NE(text.find("FAILED"), std::string::npos);
  EXPECT_NE(text.find(summary.failures[0].scenario), std::string::npos);
}

TEST_F(CampaignFixture, FaultHungScenarioIsRecordedWithStructuredCause) {
  // The middle run carries a fault plan that loses nearly every message,
  // so its measurement hangs and the watchdog reports a structured
  // SimFailure; the campaign must record it (with the simulator's
  // diagnosis, not just a string) and still measure the other runs.
  std::vector<CampaignRun> runs = {
      {mesh::DeckSize::kSmall, 8, CampaignRun::Flavor::kGeneralHomogeneous},
      {mesh::DeckSize::kSmall, 16, CampaignRun::Flavor::kGeneralHomogeneous},
      {mesh::DeckSize::kSmall, 32, CampaignRun::Flavor::kGeneralHomogeneous},
  };
  fault::MessageFaultModel lossy;
  lossy.drop_probability = 0.9;
  lossy.max_retries = 0;
  runs[1].faults.message_faults.push_back(lossy);

  const CampaignSummary summary =
      run_validation_campaign(model, engine, runs, {}, 2);
  EXPECT_TRUE(summary.degraded());
  ASSERT_EQ(summary.failures.size(), 1u);
  const CampaignFailure& failure = summary.failures[0];
  EXPECT_EQ(failure.run_index, 1u);
  EXPECT_EQ(failure.scenario, campaign_run_name(runs[1]));
  ASSERT_TRUE(failure.has_sim_failure);
  EXPECT_GE(failure.sim_failure.rank, 0);
  // The recorded error is the simulator's own one-line diagnosis.
  EXPECT_EQ(failure.error, failure.sim_failure.to_string());
  EXPECT_NE(failure.error.find("rank"), std::string::npos) << failure.error;
  // Healthy scenarios still measured.
  EXPECT_GT(summary.points[0].measured, 0.0);
  EXPECT_GT(summary.points[2].measured, 0.0);
}

TEST(CampaignPresets, MatchPaperTables) {
  const auto t5 = table5_runs();
  EXPECT_EQ(t5.size(), 6u);
  for (const CampaignRun& run : t5) {
    EXPECT_EQ(run.flavor, CampaignRun::Flavor::kMeshSpecific);
  }
  const auto t6 = table6_runs();
  EXPECT_EQ(t6.size(), 6u);
  EXPECT_EQ(t6.front().deck, mesh::DeckSize::kMedium);
  EXPECT_EQ(t6.back().deck, mesh::DeckSize::kLarge);
  EXPECT_EQ(t6.back().pes, 512);
}

}  // namespace
}  // namespace krak::core
