#include "core/table_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/calibration.hpp"
#include "util/error.hpp"

namespace krak::core {
namespace {

using mesh::Material;

TEST(TableIo, RoundTripsHandBuiltTable) {
  CostTable original;
  original.add_sample(1, Material::kHEGas, 10.0, 1.5e-6);
  original.add_sample(1, Material::kHEGas, 1000.0, 0.5e-6);
  original.add_sample(14, Material::kFoam, 64.0, 3.25e-7);
  std::stringstream stream;
  write_cost_table(stream, original);
  const CostTable loaded = read_cost_table(stream);
  for (double cells : {5.0, 10.0, 123.0, 1000.0, 1e6}) {
    EXPECT_DOUBLE_EQ(loaded.per_cell(1, Material::kHEGas, cells),
                     original.per_cell(1, Material::kHEGas, cells));
  }
  EXPECT_DOUBLE_EQ(loaded.per_cell(14, Material::kFoam, 64.0), 3.25e-7);
  EXPECT_FALSE(loaded.has_samples(2, Material::kHEGas));
}

TEST(TableIo, RoundTripsCalibratedTableExactly) {
  const simapp::ComputationCostEngine engine;
  CalibrationConfig config;
  config.sample_sizes = {16, 256, 4096};
  const CostTable original = calibrate_contrived(engine, config);
  std::stringstream stream;
  write_cost_table(stream, original);
  const CostTable loaded = read_cost_table(stream);
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (Material m : mesh::all_materials()) {
      ASSERT_EQ(loaded.sample_count(phase, m),
                original.sample_count(phase, m));
      for (double cells : {16.0, 77.0, 256.0, 1000.0, 4096.0}) {
        EXPECT_DOUBLE_EQ(loaded.per_cell(phase, m, cells),
                         original.per_cell(phase, m, cells))
            << "phase " << phase;
      }
    }
  }
}

TEST(TableIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/costs_test.krakcosts";
  CostTable original;
  original.add_sample(3, Material::kAluminumOuter, 100.0, 2e-6);
  save_cost_table(path, original);
  const CostTable loaded = load_cost_table(path);
  EXPECT_DOUBLE_EQ(loaded.per_cell(3, Material::kAluminumOuter, 100.0), 2e-6);
  std::remove(path.c_str());
}

TEST(TableIo, EmptyTableRoundTrips) {
  std::stringstream stream;
  write_cost_table(stream, CostTable{});
  const CostTable loaded = read_cost_table(stream);
  EXPECT_FALSE(loaded.has_samples(1, Material::kHEGas));
}

TEST(TableIo, RejectsMalformedInput) {
  const auto expect_reject = [](const std::string& text) {
    std::stringstream stream(text);
    EXPECT_THROW((void)read_cost_table(stream), util::KrakError) << text;
  };
  expect_reject("wrongmagic 1\nend\n");
  expect_reject("krakcosts 2\nend\n");
  expect_reject("krakcosts 1\nsample 0 0 10 1e-6\nend\n");   // bad phase
  expect_reject("krakcosts 1\nsample 1 7 10 1e-6\nend\n");   // bad material
  expect_reject("krakcosts 1\nsample 1 0 0 1e-6\nend\n");    // zero cells
  expect_reject("krakcosts 1\nsample 1 0 10 -1e-6\nend\n");  // negative cost
  expect_reject("krakcosts 1\nsample 1 0 10\nend\n");        // truncated
  expect_reject("krakcosts 1\nbogus\nend\n");                // unknown key
  expect_reject("krakcosts 1\nsample 1 0 10 1e-6\n");        // missing end
}

TEST(TableIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_cost_table("/no-such-dir/x.krakcosts"),
               util::KrakError);
}

}  // namespace
}  // namespace krak::core
