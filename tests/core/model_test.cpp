#include "core/model.hpp"

#include <gtest/gtest.h>

#include "core/calibration.hpp"
#include "network/machine.hpp"

namespace krak::core {
namespace {

using mesh::Material;

CostTable flat_table() {
  CostTable table;
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (Material m : mesh::all_materials()) {
      table.add_sample(phase, m, 1.0, 1e-6);
    }
  }
  return table;
}

TEST(KrakModel, FacadeRoutesGeneralPredictions) {
  const KrakModel model(flat_table(), network::make_es45_qsnet());
  const auto direct = model.general().predict(204800, 128,
                                              GeneralModelMode::kHomogeneous);
  const auto via_facade =
      model.predict_general(204800, 128, GeneralModelMode::kHomogeneous);
  EXPECT_DOUBLE_EQ(direct.total(), via_facade.total());
}

TEST(KrakModel, FacadeRoutesMeshSpecificPredictions) {
  const KrakModel model(flat_table(), network::make_es45_qsnet());
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 16, partition::PartitionMethod::kMultilevel, 1);
  const partition::PartitionStats stats(deck, part);
  const auto from_deck = model.predict_mesh_specific(deck, part);
  const auto from_stats = model.predict_mesh_specific(stats);
  EXPECT_DOUBLE_EQ(from_deck.total(), from_stats.total());
}

TEST(KrakModel, AccessorsExposeConfiguration) {
  const KrakModel model(flat_table(), network::make_es45_qsnet());
  EXPECT_EQ(model.machine().name, "ES45-QsNet");
  EXPECT_TRUE(model.cost_table().has_samples(1, Material::kHEGas));
}

TEST(KrakModel, GeneralAndMeshSpecificAgreeOnFlatCosts) {
  // With flat per-cell costs and a near-perfect partition, the two model
  // flavors should agree on computation within the partition imbalance.
  const KrakModel model(flat_table(), network::make_es45_qsnet());
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kMedium);
  const partition::Partition part = partition::partition_deck(
      deck, 128, partition::PartitionMethod::kMultilevel, 1);
  const auto specific = model.predict_mesh_specific(deck, part);
  const auto general =
      model.predict_general(204800, 128, GeneralModelMode::kHomogeneous);
  EXPECT_NEAR(specific.computation / general.computation, 1.0, 0.03);
}

TEST(KrakModel, EndToEndWithCalibratedTable) {
  const simapp::ComputationCostEngine engine;
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const CostTable table = calibrate_from_input(engine, deck, {16, 64});
  const KrakModel model(table, network::make_es45_qsnet());
  const auto report =
      model.predict_general(3200, 64, GeneralModelMode::kHomogeneous);
  EXPECT_GT(report.total(), 0.0);
  EXPECT_GT(report.computation, report.phase_computation[0]);
}

}  // namespace
}  // namespace krak::core
