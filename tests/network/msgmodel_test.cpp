#include "network/msgmodel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/units.hpp"

namespace krak::network {
namespace {

TEST(MessageCostModel, DefaultModelIsZeroCost) {
  const MessageCostModel model;
  EXPECT_DOUBLE_EQ(model.latency(100.0), 0.0);
  EXPECT_DOUBLE_EQ(model.byte_cost(100.0), 0.0);
  EXPECT_DOUBLE_EQ(model.message_time(100.0), 0.0);
}

TEST(MessageCostModel, EquationFourHoldsExactly) {
  // Tmsg(S) = L(S) + S * TB(S), Equation (4).
  const MessageCostModel model = make_qsnet1_model();
  for (double bytes : {1.0, 12.0, 48.0, 120.0, 4096.0, 1e6}) {
    EXPECT_DOUBLE_EQ(model.message_time(bytes),
                     model.latency(bytes) + bytes * model.byte_cost(bytes));
  }
}

TEST(MessageCostModel, HockneyModelIsAffine) {
  const MessageCostModel model =
      make_hockney_model(util::microseconds(5.0), 300e6);
  EXPECT_DOUBLE_EQ(model.latency(1.0), 5e-6);
  EXPECT_DOUBLE_EQ(model.latency(1e6), 5e-6);
  EXPECT_NEAR(model.message_time(300e6), 5e-6 + 1.0, 1e-9);
}

TEST(MessageCostModel, ZeroByteMessageCostsOnlyLatency) {
  const MessageCostModel model = make_qsnet1_model();
  EXPECT_DOUBLE_EQ(model.message_time(0.0), model.latency(0.0));
  EXPECT_GT(model.message_time(0.0), 0.0);
}

TEST(MessageCostModel, NegativeSizeRejected) {
  const MessageCostModel model = make_qsnet1_model();
  EXPECT_THROW((void)model.message_time(-1.0), util::InvalidArgument);
  EXPECT_THROW((void)model.latency(-1.0), util::InvalidArgument);
}

TEST(MessageCostModel, MessageTimeMonotoneInSize) {
  const MessageCostModel model = make_qsnet1_model();
  double previous = 0.0;
  for (double bytes = 1.0; bytes <= 4e6; bytes *= 2.0) {
    const double t = model.message_time(bytes);
    EXPECT_GT(t, previous) << "at " << bytes << " bytes";
    previous = t;
  }
}

TEST(MessageCostModel, QsnetLatencyInEraRange) {
  // Quadrics QsNet-I MPI latency was ~5 us (Petrini et al. 2002).
  const MessageCostModel model = make_qsnet1_model();
  EXPECT_GT(model.latency(8.0), util::microseconds(3.0));
  EXPECT_LT(model.latency(8.0), util::microseconds(7.0));
}

TEST(MessageCostModel, QsnetAsymptoticBandwidthNear300MB) {
  const MessageCostModel model = make_qsnet1_model();
  const double bw = model.effective_bandwidth(4.0 * 1024 * 1024);
  EXPECT_GT(bw, 250e6);
  EXPECT_LT(bw, 350e6);
}

TEST(MessageCostModel, SmallMessagesAreLatencyDominated) {
  const MessageCostModel model = make_qsnet1_model();
  const double t = model.message_time(12.0);
  EXPECT_GT(model.latency(12.0) / t, 0.9);
}

TEST(MessageCostModel, EffectiveBandwidthIncreasesWithSize) {
  const MessageCostModel model = make_qsnet1_model();
  EXPECT_LT(model.effective_bandwidth(64.0),
            model.effective_bandwidth(65536.0));
  EXPECT_THROW((void)model.effective_bandwidth(0.0), util::InvalidArgument);
}

TEST(MessageCostModel, ScaledModelScalesComponents) {
  const MessageCostModel base = make_qsnet1_model();
  const MessageCostModel fast = base.scaled(0.5, 0.25);
  for (double bytes : {8.0, 512.0, 65536.0}) {
    EXPECT_NEAR(fast.latency(bytes), 0.5 * base.latency(bytes), 1e-15);
    EXPECT_NEAR(fast.byte_cost(bytes), 0.25 * base.byte_cost(bytes), 1e-18);
  }
}

TEST(MessageCostModel, ScaledIdentityIsExactEverywhere) {
  // Regression: scaled() used to rebuild its tables point by point with
  // the default interpolation/extrapolation modes, so scaled(1, 1) of a
  // kLogX model changed values between breakpoints.
  const MessageCostModel base = make_qsnet1_model();
  const MessageCostModel same = base.scaled(1.0, 1.0);
  // Off-breakpoint sizes are the interesting ones.
  for (double bytes : {1.0, 3.0, 100.0, 1000.0, 10000.0, 123456.0, 5e6}) {
    EXPECT_DOUBLE_EQ(same.latency(bytes), base.latency(bytes))
        << "at " << bytes;
    EXPECT_DOUBLE_EQ(same.byte_cost(bytes), base.byte_cost(bytes))
        << "at " << bytes;
    EXPECT_DOUBLE_EQ(same.message_time(bytes), base.message_time(bytes))
        << "at " << bytes;
  }
}

TEST(MessageCostModel, ScaledPreservesLinearInterpolation) {
  // Two-point linear-interpolation latency: the midpoint is the mean of
  // the endpoints. A rebuild that forced kLogX would bend the segment.
  const std::vector<double> xs = {1.0, 1001.0};
  const std::vector<double> lat_ys = {1e-6, 3e-6};
  const std::vector<double> tb_ys = {1e-9, 1e-9};
  const MessageCostModel base(
      util::PiecewiseLinear(xs, lat_ys, util::Interpolation::kLinear),
      util::PiecewiseLinear(xs, tb_ys, util::Interpolation::kLinear));
  ASSERT_DOUBLE_EQ(base.latency(501.0), 2e-6);  // linear midpoint
  const MessageCostModel same = base.scaled(1.0, 1.0);
  EXPECT_DOUBLE_EQ(same.latency(501.0), 2e-6);
  const MessageCostModel fast = base.scaled(0.5, 1.0);
  EXPECT_DOUBLE_EQ(fast.latency(501.0), 1e-6);
}

TEST(MessageCostModel, ScaledPreservesLinearExtrapolation) {
  // Latency extrapolates the last segment's slope past x = 2; a rebuild
  // with the default clamp would flatten it to the last y.
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> lat_ys = {1e-6, 2e-6};
  const std::vector<double> tb_ys = {1e-9, 1e-9};
  const MessageCostModel base(
      util::PiecewiseLinear(xs, lat_ys, util::Interpolation::kLinear,
                            util::Extrapolation::kLinear),
      util::PiecewiseLinear(xs, tb_ys, util::Interpolation::kLinear));
  ASSERT_DOUBLE_EQ(base.latency(10.0), 10e-6);  // extrapolated slope
  const MessageCostModel same = base.scaled(1.0, 1.0);
  EXPECT_DOUBLE_EQ(same.latency(10.0), 10e-6);
  const MessageCostModel doubled = base.scaled(2.0, 1.0);
  EXPECT_DOUBLE_EQ(doubled.latency(10.0), 20e-6);
}

TEST(MessageCostModel, ScaledRejectsNonPositiveFactors) {
  const MessageCostModel base = make_qsnet1_model();
  EXPECT_THROW((void)base.scaled(0.0, 1.0), util::InvalidArgument);
  EXPECT_THROW((void)base.scaled(1.0, -1.0), util::InvalidArgument);
}

TEST(MessageCostModel, HockneyRejectsBadParameters) {
  EXPECT_THROW((void)make_hockney_model(-1.0, 1.0), util::InvalidArgument);
  EXPECT_THROW((void)make_hockney_model(1.0, 0.0), util::InvalidArgument);
}

/// Piecewise interpolation between table breakpoints must stay within
/// the bracketing byte-cost values.
class ByteCostBoundsTest : public ::testing::TestWithParam<double> {};

TEST_P(ByteCostBoundsTest, WithinTableRange) {
  const MessageCostModel model = make_qsnet1_model();
  const double cost = model.byte_cost(GetParam());
  EXPECT_GE(cost, util::nanoseconds(3.0));
  EXPECT_LE(cost, util::nanoseconds(12.0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ByteCostBoundsTest,
                         ::testing::Values(1.0, 7.0, 100.0, 1000.0, 10000.0,
                                           123456.0, 5e6));

}  // namespace
}  // namespace krak::network
