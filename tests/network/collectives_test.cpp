#include "network/collectives.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/units.hpp"

namespace krak::network {
namespace {

MessageCostModel unit_model() {
  // Latency 1 s, no byte cost: collective times then literally count
  // message steps, which makes the equations checkable by hand.
  return make_hockney_model(1.0, 1e30);
}

TEST(CollectiveModel, TreeDepthPowersOfTwo) {
  EXPECT_EQ(CollectiveModel::tree_depth(1), 0);
  EXPECT_EQ(CollectiveModel::tree_depth(2), 1);
  EXPECT_EQ(CollectiveModel::tree_depth(4), 2);
  EXPECT_EQ(CollectiveModel::tree_depth(256), 8);
  EXPECT_EQ(CollectiveModel::tree_depth(512), 9);
  EXPECT_EQ(CollectiveModel::tree_depth(1024), 10);
}

TEST(CollectiveModel, TreeDepthNonPowersRoundUp) {
  EXPECT_EQ(CollectiveModel::tree_depth(3), 2);
  EXPECT_EQ(CollectiveModel::tree_depth(5), 3);
  EXPECT_EQ(CollectiveModel::tree_depth(100), 7);
}

TEST(CollectiveModel, TreeDepthRejectsNonPositive) {
  EXPECT_THROW((void)CollectiveModel::tree_depth(0), util::InvalidArgument);
}

TEST(CollectiveModel, FanOutCountsLogPMessages) {
  const CollectiveModel model(unit_model());
  // "a one-to-all communication requires log(P) messages" (Section 4.3).
  EXPECT_DOUBLE_EQ(model.fan_out(8, 4.0), 3.0);
  EXPECT_DOUBLE_EQ(model.fan_in(8, 4.0), 3.0);
  EXPECT_DOUBLE_EQ(model.fan_out(1, 4.0), 0.0);
}

TEST(CollectiveModel, FanInFanOutCountsTwiceLogP) {
  const CollectiveModel model(unit_model());
  // "a synchronization point requires 2 log(P) messages".
  EXPECT_DOUBLE_EQ(model.fan_in_fan_out(8, 4.0), 6.0);
}

TEST(CollectiveModel, Equation8BroadcastCoefficients) {
  // T_Broadcast = 3 log(P) Tmsg(4) + 3 log(P) Tmsg(8); with unit
  // latency each Tmsg is 1, so the total is 6 log(P).
  const CollectiveModel model(unit_model());
  EXPECT_DOUBLE_EQ(model.iteration_broadcast(16), 6.0 * 4.0);
}

TEST(CollectiveModel, Equation9AllreduceCoefficients) {
  // T_Allreduce = 18 log(P) Tmsg(4) + 26 log(P) Tmsg(8) = 44 log(P).
  const CollectiveModel model(unit_model());
  EXPECT_DOUBLE_EQ(model.iteration_allreduce(16), 44.0 * 4.0);
}

TEST(CollectiveModel, Equation10GatherCoefficients) {
  // T_Gather = log(P) Tmsg(32).
  const CollectiveModel model(unit_model());
  EXPECT_DOUBLE_EQ(model.iteration_gather(16), 4.0);
}

TEST(CollectiveModel, IterationTotalIsSumOfEquations) {
  const CollectiveModel model(make_qsnet1_model());
  for (std::int32_t pes : {1, 2, 16, 128, 512}) {
    EXPECT_DOUBLE_EQ(model.iteration_collectives(pes),
                     model.iteration_broadcast(pes) +
                         model.iteration_allreduce(pes) +
                         model.iteration_gather(pes));
  }
}

TEST(CollectiveModel, SingleProcessorIsFree) {
  const CollectiveModel model(make_qsnet1_model());
  EXPECT_DOUBLE_EQ(model.iteration_collectives(1), 0.0);
}

TEST(CollectiveModel, CostGrowsLogarithmically) {
  const CollectiveModel model(make_qsnet1_model());
  // Doubling P adds one tree level: the 512->1024 increment equals the
  // 256->512 increment.
  const double d1 =
      model.iteration_allreduce(512) - model.iteration_allreduce(256);
  const double d2 =
      model.iteration_allreduce(1024) - model.iteration_allreduce(512);
  EXPECT_NEAR(d1, d2, 1e-12);
  EXPECT_GT(d1, 0.0);
}

TEST(CollectiveInventory, MatchesTable4) {
  const CollectiveInventory inv;
  EXPECT_EQ(inv.bcast_4b, 3);
  EXPECT_EQ(inv.bcast_8b, 3);
  EXPECT_EQ(inv.allreduce_4b, 9);
  EXPECT_EQ(inv.allreduce_8b, 13);
  EXPECT_EQ(inv.gather_32b, 1);
  EXPECT_EQ(inv.total_allreduces(), 22);
}

}  // namespace
}  // namespace krak::network
