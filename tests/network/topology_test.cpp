#include "network/topology.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace krak::network {
namespace {

TEST(Placement, BlockAssignment) {
  const Placement placement(10, 4);
  EXPECT_EQ(placement.node_of(0), 0);
  EXPECT_EQ(placement.node_of(3), 0);
  EXPECT_EQ(placement.node_of(4), 1);
  EXPECT_EQ(placement.node_of(9), 2);
  EXPECT_EQ(placement.nodes_used(), 3);
}

TEST(Placement, SameNodePredicate) {
  const Placement placement(8, 4);
  EXPECT_TRUE(placement.same_node(0, 3));
  EXPECT_FALSE(placement.same_node(3, 4));
  EXPECT_TRUE(placement.same_node(5, 5));
}

TEST(Placement, SinglePePerNode) {
  const Placement placement(4, 1);
  EXPECT_EQ(placement.nodes_used(), 4);
  EXPECT_FALSE(placement.same_node(0, 1));
}

TEST(Placement, RejectsBadArguments) {
  EXPECT_THROW(Placement(0, 4), util::InvalidArgument);
  EXPECT_THROW(Placement(4, 0), util::InvalidArgument);
  const Placement placement(4, 2);
  EXPECT_THROW((void)placement.node_of(4), util::InvalidArgument);
  EXPECT_THROW((void)placement.node_of(-1), util::InvalidArgument);
}

TEST(HierarchicalNetwork, IntraNodeIsCheaper) {
  const HierarchicalNetwork net(make_es45_shared_memory_model(),
                                make_qsnet1_model(), Placement(8, 4));
  for (double bytes : {8.0, 120.0, 4096.0, 65536.0}) {
    // Ranks 0 and 1 share a node; ranks 0 and 4 do not.
    EXPECT_LT(net.message_time(0, 1, bytes), net.message_time(0, 4, bytes));
    EXPECT_LT(net.latency(0, 1, bytes), net.latency(0, 4, bytes));
  }
}

TEST(HierarchicalNetwork, InterNodeMatchesFlatModel) {
  const MessageCostModel flat = make_qsnet1_model();
  const HierarchicalNetwork net(make_es45_shared_memory_model(), flat,
                                Placement(8, 4));
  for (double bytes : {8.0, 512.0, 65536.0}) {
    EXPECT_DOUBLE_EQ(net.message_time(0, 7, bytes), flat.message_time(bytes));
  }
}

TEST(HierarchicalNetwork, IntraNodeMatchesSharedMemoryModel) {
  const MessageCostModel shm = make_es45_shared_memory_model();
  const HierarchicalNetwork net(shm, make_qsnet1_model(), Placement(8, 4));
  EXPECT_DOUBLE_EQ(net.message_time(4, 6, 256.0), shm.message_time(256.0));
}

TEST(SharedMemoryModel, SubMicrosecondLatencyGigabyteBandwidth) {
  const MessageCostModel shm = make_es45_shared_memory_model();
  EXPECT_LT(shm.latency(8.0), 1e-6);
  EXPECT_GT(shm.effective_bandwidth(1 << 20), 500e6);
  // Faster than the interconnect at every size.
  const MessageCostModel qsnet = make_qsnet1_model();
  for (double bytes = 1.0; bytes <= 1e6; bytes *= 4.0) {
    EXPECT_LT(shm.message_time(bytes), qsnet.message_time(bytes));
  }
}

}  // namespace
}  // namespace krak::network
