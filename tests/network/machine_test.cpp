#include "network/machine.hpp"

#include <gtest/gtest.h>

namespace krak::network {
namespace {

TEST(Machine, Es45MatchesPaperPlatform) {
  // Section 5.1: 256 ES-45 nodes with 4 Alpha EV-68 processors each.
  const MachineConfig machine = make_es45_qsnet();
  EXPECT_EQ(machine.nodes, 256);
  EXPECT_EQ(machine.pes_per_node, 4);
  EXPECT_EQ(machine.total_pes(), 1024);
  EXPECT_DOUBLE_EQ(machine.compute_speedup, 1.0);
  EXPECT_EQ(machine.name, "ES45-QsNet");
}

TEST(Machine, Es45NetworkIsPopulated) {
  const MachineConfig machine = make_es45_qsnet();
  EXPECT_GT(machine.network.message_time(8.0), 0.0);
}

TEST(Machine, UpgradeIsStrictlyFaster) {
  const MachineConfig base = make_es45_qsnet();
  const MachineConfig upgrade = make_hypothetical_upgrade();
  EXPECT_GT(upgrade.compute_speedup, base.compute_speedup);
  for (double bytes : {8.0, 512.0, 65536.0}) {
    EXPECT_LT(upgrade.network.message_time(bytes),
              base.network.message_time(bytes));
  }
  EXPECT_EQ(upgrade.total_pes(), base.total_pes());
}

}  // namespace
}  // namespace krak::network
