#include "partition/dualgraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace krak::partition {
namespace {

TEST(DualGraph, SingleCellHasNoEdges) {
  const Graph g = build_dual_graph(mesh::Grid(1, 1));
  EXPECT_EQ(g.num_vertices(), 1);
  EXPECT_EQ(g.num_edges(), 0);
  g.validate();
}

TEST(DualGraph, EdgeCountMatchesInteriorFaces) {
  const mesh::Grid grid(6, 4);
  const Graph g = build_dual_graph(grid);
  EXPECT_EQ(g.num_vertices(), 24);
  // Interior faces: nx*(ny-1) + (nx-1)*ny = 6*3 + 5*4 = 38.
  EXPECT_EQ(g.num_edges(), 38);
  g.validate();
}

TEST(DualGraph, UnitWeights) {
  const Graph g = build_dual_graph(mesh::Grid(3, 3));
  for (std::int32_t w : g.vwgt) EXPECT_EQ(w, 1);
  for (std::int32_t w : g.ewgt) EXPECT_EQ(w, 1);
  EXPECT_EQ(g.total_vertex_weight(), 9);
}

TEST(DualGraph, NeighborsMatchGridAdjacency) {
  const mesh::Grid grid(4, 4);
  const Graph g = build_dual_graph(grid);
  for (std::int32_t v = 0; v < g.num_vertices(); ++v) {
    const auto expected = grid.neighbors_of_cell(v);
    const auto actual = g.neighbors(v);
    ASSERT_EQ(actual.size(), expected.size());
    for (mesh::CellId n : expected) {
      EXPECT_NE(std::find(actual.begin(), actual.end(), n), actual.end());
    }
  }
}

TEST(Graph, NeighborAccessorsCheckRange) {
  const Graph g = build_dual_graph(mesh::Grid(2, 2));
  EXPECT_THROW((void)g.neighbors(4), util::InvalidArgument);
  EXPECT_THROW((void)g.neighbors(-1), util::InvalidArgument);
  EXPECT_THROW((void)g.edge_weights(4), util::InvalidArgument);
}

TEST(Graph, ValidateCatchesAsymmetry) {
  Graph g;
  g.vwgt = {1, 1};
  g.xadj = {0, 1, 1};
  g.adjncy = {1};  // 0 -> 1 but not 1 -> 0
  g.ewgt = {1};
  EXPECT_THROW(g.validate(), util::InternalError);
}

TEST(Graph, ValidateCatchesSelfLoop) {
  Graph g;
  g.vwgt = {1};
  g.xadj = {0, 1};
  g.adjncy = {0};
  g.ewgt = {1};
  EXPECT_THROW(g.validate(), util::InternalError);
}

TEST(Graph, ValidateCatchesBadXadj) {
  Graph g;
  g.vwgt = {1, 1};
  g.xadj = {0, 2, 1};  // non-monotone
  g.adjncy = {1, 0};
  g.ewgt = {1, 1};
  EXPECT_THROW(g.validate(), util::InternalError);
}

}  // namespace
}  // namespace krak::partition
