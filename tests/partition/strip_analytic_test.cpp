// Analytic cross-checks of the boundary statistics on strip partitions,
// where every quantity has a closed form: a boundary between adjacent
// full-row strips of an nx-wide grid has exactly nx shared faces and
// nx + 1 ghost nodes.

#include <gtest/gtest.h>

#include "mesh/deck.hpp"
#include "partition/partition.hpp"
#include "partition/stats.hpp"

namespace krak::partition {
namespace {

TEST(StripAnalytic, RowStripBoundariesHaveExactCounts) {
  // 80x40 grid into 8 strips of 5 full rows each.
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition part = partition_strips(3200, 8);
  const PartitionStats stats(deck, part);
  for (PeId pe = 0; pe < 8; ++pe) {
    const SubdomainInfo& sub = stats.subdomain(pe);
    const std::size_t expected_neighbors = (pe == 0 || pe == 7) ? 1u : 2u;
    ASSERT_EQ(sub.neighbors.size(), expected_neighbors) << "pe " << pe;
    for (const NeighborBoundary& boundary : sub.neighbors) {
      EXPECT_EQ(boundary.total_faces, 80);
      EXPECT_EQ(boundary.total_ghost_nodes(), 81);
      // Full rows carry every material layer: all three exchange
      // groups present.
      for (std::int64_t faces : boundary.faces_per_group) {
        EXPECT_GT(faces, 0);
      }
    }
  }
}

TEST(StripAnalytic, GroupFacesMatchDeckLayerWidths) {
  // The faces of each group along a full-row boundary equal the deck's
  // layer widths in columns.
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition part = partition_strips(3200, 8);
  const PartitionStats stats(deck, part);
  const auto counts = deck.material_cell_counts();
  const auto columns = [&](mesh::Material m) {
    return counts[mesh::material_index(m)] / 40;  // cells / rows
  };
  const NeighborBoundary& boundary = stats.subdomain(0).neighbors.front();
  EXPECT_EQ(boundary.faces_per_group[mesh::exchange_group(
                mesh::Material::kHEGas)],
            columns(mesh::Material::kHEGas));
  EXPECT_EQ(boundary.faces_per_group[mesh::exchange_group(
                mesh::Material::kFoam)],
            columns(mesh::Material::kFoam));
  EXPECT_EQ(boundary.faces_per_group[mesh::exchange_group(
                mesh::Material::kAluminumInner)],
            columns(mesh::Material::kAluminumInner) +
                columns(mesh::Material::kAluminumOuter));
}

TEST(StripAnalytic, MultiMaterialNodesAreTheLayerJunctions) {
  // Along a full-row boundary exactly three nodes sit on material-group
  // junctions (HE|Al, Al|foam, foam|Al -> group junctions HE|Al, Al|F,
  // F|Al), and each junction node touches two groups.
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition part = partition_strips(3200, 8);
  const PartitionStats stats(deck, part);
  const NeighborBoundary& boundary = stats.subdomain(0).neighbors.front();
  EXPECT_EQ(boundary.multi_material_ghost_nodes, 3);
  // Aluminum (group of both layers) touches all three junctions.
  EXPECT_EQ(boundary.multi_material_nodes_per_group[mesh::exchange_group(
                mesh::Material::kAluminumInner)],
            3);
  EXPECT_EQ(boundary.multi_material_nodes_per_group[mesh::exchange_group(
                mesh::Material::kHEGas)],
            1);
  EXPECT_EQ(boundary.multi_material_nodes_per_group[mesh::exchange_group(
                mesh::Material::kFoam)],
            2);
}

}  // namespace
}  // namespace krak::partition
