#include "partition/stats.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "mesh/deck.hpp"
#include "partition/partition.hpp"
#include "util/error.hpp"

namespace krak::partition {
namespace {

using mesh::Material;

/// The Figure 4 scenario: a two-column grid, one column per processor,
/// with 3 HE gas, 2 aluminum, 3 foam, and 2 aluminum rows stacked along
/// the boundary — the exact configuration behind Table 3.
mesh::InputDeck make_figure4_deck() {
  mesh::Grid grid(2, 10);
  std::vector<Material> materials(20);
  const auto material_of_row = [](std::int32_t j) {
    if (j < 3) return Material::kHEGas;
    if (j < 5) return Material::kAluminumInner;
    if (j < 8) return Material::kFoam;
    return Material::kAluminumOuter;
  };
  for (std::int32_t j = 0; j < 10; ++j) {
    for (std::int32_t i = 0; i < 2; ++i) {
      materials[static_cast<std::size_t>(grid.cell_at(i, j))] =
          material_of_row(j);
    }
  }
  return mesh::InputDeck("figure4", grid, std::move(materials),
                         mesh::Point{0.0, 4.0});
}

Partition figure4_partition() {
  // Column 0 -> PE A (0), column 1 -> PE B (1).
  std::vector<PeId> assignment(20);
  for (std::int32_t j = 0; j < 10; ++j) {
    assignment[static_cast<std::size_t>(j * 2)] = 0;
    assignment[static_cast<std::size_t>(j * 2 + 1)] = 1;
  }
  return Partition(2, std::move(assignment));
}

TEST(PartitionStats, Figure4FaceCountsMatchTable3) {
  const mesh::InputDeck deck = make_figure4_deck();
  const PartitionStats stats(deck, figure4_partition());
  ASSERT_EQ(stats.parts(), 2);
  const SubdomainInfo& a = stats.subdomain(0);
  ASSERT_EQ(a.neighbors.size(), 1u);
  const NeighborBoundary& boundary = a.neighbors.front();
  EXPECT_EQ(boundary.neighbor, 1);
  EXPECT_EQ(boundary.total_faces, 10);
  // Groups: HE gas 3, aluminum (both layers) 2+2, foam 3.
  EXPECT_EQ(boundary.faces_per_group[mesh::exchange_group(Material::kHEGas)], 3);
  EXPECT_EQ(
      boundary.faces_per_group[mesh::exchange_group(Material::kAluminumInner)],
      4);
  EXPECT_EQ(boundary.faces_per_group[mesh::exchange_group(Material::kFoam)], 3);
}

TEST(PartitionStats, Figure4MultiMaterialNodesMatchTable3) {
  // Table 3's message sizes imply: HE gas sees 1 multi-material node,
  // aluminum 3, foam 2 — the three material junctions along the
  // boundary, each charged to the materials meeting there.
  const mesh::InputDeck deck = make_figure4_deck();
  const PartitionStats stats(deck, figure4_partition());
  const NeighborBoundary& boundary = stats.subdomain(0).neighbors.front();
  EXPECT_EQ(boundary.multi_material_ghost_nodes, 3);
  EXPECT_EQ(boundary.multi_material_nodes_per_group[mesh::exchange_group(
                Material::kHEGas)],
            1);
  EXPECT_EQ(boundary.multi_material_nodes_per_group[mesh::exchange_group(
                Material::kAluminumInner)],
            3);
  EXPECT_EQ(boundary.multi_material_nodes_per_group[mesh::exchange_group(
                Material::kFoam)],
            2);
}

TEST(PartitionStats, Figure4GhostNodesCountFacesPlusOne) {
  // A contiguous boundary of F faces carries F + 1 nodes (Section 3.2's
  // general-model assumption holds exactly here).
  const mesh::InputDeck deck = make_figure4_deck();
  const PartitionStats stats(deck, figure4_partition());
  const NeighborBoundary& boundary = stats.subdomain(0).neighbors.front();
  EXPECT_EQ(boundary.total_ghost_nodes(), 11);
}

TEST(PartitionStats, GhostOwnershipSymmetricAcrossPair) {
  // My local ghost nodes are exactly the neighbor's remote ones.
  const mesh::InputDeck deck = make_figure4_deck();
  const PartitionStats stats(deck, figure4_partition());
  const NeighborBoundary& from_a = stats.subdomain(0).neighbors.front();
  const NeighborBoundary& from_b = stats.subdomain(1).neighbors.front();
  EXPECT_EQ(from_a.ghost_nodes_local, from_b.ghost_nodes_remote);
  EXPECT_EQ(from_a.ghost_nodes_remote, from_b.ghost_nodes_local);
  EXPECT_EQ(from_a.total_ghost_nodes(), from_b.total_ghost_nodes());
}

TEST(PartitionStats, FaceCountsSymmetricAcrossPair) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition part =
      partition_deck(deck, 12, PartitionMethod::kMultilevel, 7);
  const PartitionStats stats(deck, part);
  for (const SubdomainInfo& sub : stats.subdomains()) {
    for (const NeighborBoundary& boundary : sub.neighbors) {
      // Find the reverse edge.
      const SubdomainInfo& other = stats.subdomain(boundary.neighbor);
      const auto it = std::find_if(
          other.neighbors.begin(), other.neighbors.end(),
          [&](const NeighborBoundary& b) { return b.neighbor == sub.pe; });
      ASSERT_NE(it, other.neighbors.end());
      EXPECT_EQ(boundary.total_faces, it->total_faces);
      EXPECT_EQ(boundary.faces_per_group, it->faces_per_group);
      EXPECT_EQ(boundary.multi_material_nodes_per_group,
                it->multi_material_nodes_per_group);
    }
  }
}

TEST(PartitionStats, CellCountsSumAcrossSubdomains) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition part =
      partition_deck(deck, 16, PartitionMethod::kMultilevel, 1);
  const PartitionStats stats(deck, part);
  std::int64_t total = 0;
  std::array<std::int64_t, mesh::kMaterialCount> per_material{};
  for (const SubdomainInfo& sub : stats.subdomains()) {
    total += sub.total_cells;
    std::int64_t sub_sum = 0;
    for (std::size_t m = 0; m < mesh::kMaterialCount; ++m) {
      per_material[m] += sub.cells_per_material[m];
      sub_sum += sub.cells_per_material[m];
    }
    EXPECT_EQ(sub_sum, sub.total_cells);
  }
  EXPECT_EQ(total, deck.grid().num_cells());
  EXPECT_EQ(per_material, deck.material_cell_counts());
}

TEST(PartitionStats, GroupFacesSumToTotalFaces) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition part =
      partition_deck(deck, 16, PartitionMethod::kMultilevel, 2);
  const PartitionStats stats(deck, part);
  for (const SubdomainInfo& sub : stats.subdomains()) {
    for (const NeighborBoundary& boundary : sub.neighbors) {
      const std::int64_t group_sum = std::accumulate(
          boundary.faces_per_group.begin(), boundary.faces_per_group.end(),
          std::int64_t{0});
      EXPECT_EQ(group_sum, boundary.total_faces);
      EXPECT_GT(boundary.total_faces, 0);
    }
  }
}

TEST(PartitionStats, GhostSplitRoughlyHalfAtScale) {
  // Section 3.2 assumes half the ghost nodes on each boundary are local;
  // the hash-based ownership rule should give 50% +- a few percent in
  // aggregate.
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kMedium);
  const Partition part =
      partition_deck(deck, 64, PartitionMethod::kMultilevel, 1);
  const PartitionStats stats(deck, part);
  std::int64_t local = 0;
  std::int64_t total = 0;
  for (const SubdomainInfo& sub : stats.subdomains()) {
    for (const NeighborBoundary& boundary : sub.neighbors) {
      local += boundary.ghost_nodes_local;
      total += boundary.total_ghost_nodes();
    }
  }
  ASSERT_GT(total, 0);
  const double fraction = static_cast<double>(local) / static_cast<double>(total);
  EXPECT_NEAR(fraction, 0.5, 0.05);
}

TEST(PartitionStats, SinglePartHasNoBoundaries) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition part(1, std::vector<PeId>(3200, 0));
  const PartitionStats stats(deck, part);
  EXPECT_TRUE(stats.subdomain(0).neighbors.empty());
  EXPECT_EQ(stats.subdomain(0).total_cells, 3200);
  EXPECT_EQ(stats.total_boundary_faces(), 0);
}

TEST(PartitionStats, MaxCellsReflectsImbalance) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(4, 1, Material::kFoam);
  const Partition part(2, {0, 0, 0, 1});
  const PartitionStats stats(deck, part);
  EXPECT_EQ(stats.max_cells_per_pe(), 3);
}

TEST(PartitionStats, MismatchedPartitionRejected) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(2, 2, Material::kFoam);
  const Partition part(1, {0, 0});
  EXPECT_THROW(PartitionStats(deck, part), util::InvalidArgument);
}

}  // namespace
}  // namespace krak::partition
