#include <gtest/gtest.h>

#include "mesh/deck.hpp"
#include "partition/partition.hpp"
#include "partition/stats.hpp"

namespace krak::partition {
namespace {

TEST(MaterialAware, EveryPeGetsEveryMaterialShare) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition part =
      partition_deck(deck, 16, PartitionMethod::kMaterialAware);
  const PartitionStats stats(deck, part);
  const auto totals = deck.material_cell_counts();
  for (const SubdomainInfo& sub : stats.subdomains()) {
    for (std::size_t m = 0; m < mesh::kMaterialCount; ++m) {
      const double expected =
          static_cast<double>(totals[m]) / 16.0;
      EXPECT_NEAR(static_cast<double>(sub.cells_per_material[m]), expected,
                  expected * 0.05 + 1.0)
          << "pe " << sub.pe << " material " << m;
    }
  }
}

TEST(MaterialAware, TotalBalanceWithinFivePercent) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kMedium);
  const Partition part =
      partition_deck(deck, 64, PartitionMethod::kMaterialAware);
  const Graph graph = build_dual_graph(deck.grid());
  const PartitionQuality quality = evaluate_partition(graph, part);
  EXPECT_LE(quality.imbalance, 1.05);
  EXPECT_EQ(quality.empty_parts, 0);
}

TEST(MaterialAware, NoHomogeneousSubgridsAtScale) {
  // The defining property: even at high processor counts, subgrids keep
  // the global material mix (multilevel subgrids become single-material
  // instead).
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kMedium);
  const Partition aware =
      partition_deck(deck, 256, PartitionMethod::kMaterialAware);
  const PartitionStats stats(deck, aware);
  std::int32_t single_material = 0;
  for (const SubdomainInfo& sub : stats.subdomains()) {
    std::int32_t present = 0;
    for (std::int64_t n : sub.cells_per_material) {
      if (n > 0) ++present;
    }
    if (present == 1) ++single_material;
  }
  EXPECT_EQ(single_material, 0);
}

TEST(MaterialAware, HigherEdgeCutThanMultilevel) {
  // The trade-off: per-material balance costs edge cut.
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Graph graph = build_dual_graph(deck.grid());
  const auto cut = [&](PartitionMethod method) {
    return evaluate_partition(graph, partition_deck(deck, 16, method, 1))
        .edge_cut;
  };
  EXPECT_GT(cut(PartitionMethod::kMaterialAware),
            cut(PartitionMethod::kMultilevel));
}

TEST(MaterialAware, Deterministic) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition a = partition_deck(deck, 12, PartitionMethod::kMaterialAware);
  const Partition b = partition_deck(deck, 12, PartitionMethod::kMaterialAware);
  EXPECT_EQ(a.assignment(), b.assignment());
}

TEST(MaterialAware, SinglePart) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(4, 4, mesh::Material::kFoam);
  const Partition part =
      partition_deck(deck, 1, PartitionMethod::kMaterialAware);
  for (std::int64_t cell = 0; cell < part.num_cells(); ++cell) {
    EXPECT_EQ(part.pe_of(cell), 0);
  }
}

TEST(MaterialAware, MorePartsThanMaterialCellsStillCoversAllPes) {
  // A tiny deck where one material has fewer cells than parts.
  const mesh::InputDeck deck = mesh::make_cylindrical_deck(8, 2);
  const Partition part =
      partition_deck(deck, 8, PartitionMethod::kMaterialAware);
  const auto counts = part.cell_counts();
  for (std::int64_t c : counts) EXPECT_GT(c, 0);
}

TEST(MaterialAware, NamedCorrectly) {
  EXPECT_EQ(partition_method_name(PartitionMethod::kMaterialAware),
            "material-aware");
}

}  // namespace
}  // namespace krak::partition
