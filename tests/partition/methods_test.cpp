#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "mesh/deck.hpp"
#include "partition/partition.hpp"
#include "util/error.hpp"

namespace krak::partition {
namespace {

/// Common invariants every partitioning method must satisfy on every
/// deck/part-count combination: complete assignment, good balance, no
/// empty parts.
class MethodSweepTest
    : public ::testing::TestWithParam<std::tuple<PartitionMethod, std::int32_t>> {
};

TEST_P(MethodSweepTest, BalanceAndCompleteness) {
  const auto [method, parts] = GetParam();
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition p = partition_deck(deck, parts, method, /*seed=*/3);
  EXPECT_EQ(p.parts(), parts);
  EXPECT_EQ(p.num_cells(), deck.grid().num_cells());

  const Graph g = build_dual_graph(deck.grid());
  const PartitionQuality q = evaluate_partition(g, p);
  EXPECT_EQ(q.empty_parts, 0) << partition_method_name(method);
  // All methods must stay within 10% imbalance on this well-shaped
  // grid; the multilevel method targets 2-3%.
  EXPECT_LE(q.imbalance, 1.10) << partition_method_name(method);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, MethodSweepTest,
    ::testing::Combine(::testing::Values(PartitionMethod::kStrip,
                                         PartitionMethod::kRcb,
                                         PartitionMethod::kMultilevel),
                       ::testing::Values(1, 2, 3, 7, 16, 61, 128)),
    [](const auto& info) {
      return std::string(partition_method_name(std::get<0>(info.param))) +
             "_p" + std::to_string(std::get<1>(info.param));
    });

TEST(Rcb, SplitsSquareIntoQuadrants) {
  // A 4x4 grid into 4 parts: RCB must produce four 2x2 blocks.
  const mesh::InputDeck deck = mesh::make_uniform_deck(4, 4, mesh::Material::kFoam);
  const Partition p = partition_deck(deck, 4, PartitionMethod::kRcb);
  const mesh::Grid& g = deck.grid();
  // Cells in the same quadrant share a part.
  for (std::int32_t j = 0; j < 4; ++j) {
    for (std::int32_t i = 0; i < 4; ++i) {
      const PeId pe = p.pe_of(g.cell_at(i, j));
      const PeId quadrant_rep = p.pe_of(g.cell_at((i / 2) * 2, (j / 2) * 2));
      EXPECT_EQ(pe, quadrant_rep);
    }
  }
  const auto counts = p.cell_counts();
  for (auto c : counts) EXPECT_EQ(c, 4);
}

TEST(Rcb, DeterministicAcrossCalls) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition a = partition_deck(deck, 13, PartitionMethod::kRcb);
  const Partition b = partition_deck(deck, 13, PartitionMethod::kRcb);
  EXPECT_EQ(a.assignment(), b.assignment());
}

TEST(Rcb, NonPowerOfTwoPartsBalanced) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition p = partition_deck(deck, 5, PartitionMethod::kRcb);
  const auto counts = p.cell_counts();
  const auto [min_it, max_it] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GE(*min_it, 3200 / 5 - 1);
  EXPECT_LE(*max_it, 3200 / 5 + 1);
}

TEST(Multilevel, SameSeedReproduces) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition a = partition_deck(deck, 16, PartitionMethod::kMultilevel, 5);
  const Partition b = partition_deck(deck, 16, PartitionMethod::kMultilevel, 5);
  EXPECT_EQ(a.assignment(), b.assignment());
}

TEST(Multilevel, CutBeatsStripOnWideGrid) {
  // Strips across an 80x40 grid cut whole rows; a locality-aware method
  // must do strictly better.
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Graph g = build_dual_graph(deck.grid());
  const auto cut = [&](PartitionMethod m) {
    return evaluate_partition(g, partition_deck(deck, 16, m, 1)).edge_cut;
  };
  EXPECT_LT(cut(PartitionMethod::kMultilevel), cut(PartitionMethod::kStrip));
}

TEST(Multilevel, TightBalanceOnMediumDeck) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kMedium);
  const Partition p = partition_deck(deck, 128, PartitionMethod::kMultilevel, 1);
  const Graph g = build_dual_graph(deck.grid());
  const PartitionQuality q = evaluate_partition(g, p);
  EXPECT_LE(q.imbalance, 1.03);
  EXPECT_EQ(q.empty_parts, 0);
  // Neighbor counts of an irregular partition vary (Section 2: "each
  // processor has N neighbors, where N varies across processors").
  EXPECT_GE(q.max_neighbors, 4);
}

TEST(Multilevel, SinglePartTrivial) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition p = partition_deck(deck, 1, PartitionMethod::kMultilevel);
  for (std::int64_t cell = 0; cell < p.num_cells(); ++cell) {
    EXPECT_EQ(p.pe_of(cell), 0);
  }
}

TEST(Multilevel, PartsEqualToCells) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(4, 2, mesh::Material::kFoam);
  const Partition p = partition_deck(deck, 8, PartitionMethod::kMultilevel, 1);
  const auto counts = p.cell_counts();
  for (auto c : counts) EXPECT_EQ(c, 1);
}

TEST(PartitionDeck, RejectsBadArguments) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(2, 2, mesh::Material::kFoam);
  EXPECT_THROW((void)partition_deck(deck, 0, PartitionMethod::kRcb),
               util::InvalidArgument);
  EXPECT_THROW((void)partition_deck(deck, 5, PartitionMethod::kRcb),
               util::InvalidArgument);
}

}  // namespace
}  // namespace krak::partition
