#include <gtest/gtest.h>

#include <numeric>

#include "mesh/deck.hpp"
#include "partition/partition.hpp"
#include "partition/stats.hpp"
#include "util/error.hpp"

namespace krak::partition {
namespace {

using mesh::Material;

/// HE gas 4x as expensive as everything else — an exaggerated version
/// of the deck's real cost skew, making the balancing effect crisp.
std::array<double, mesh::kMaterialCount> skewed_costs() {
  return {4.0, 1.0, 1.0, 1.0};
}

TEST(WeightedGraph, WeightsFollowMaterialCosts) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Graph g = build_weighted_dual_graph(deck, skewed_costs());
  g.validate();
  for (std::int32_t v = 0; v < g.num_vertices(); ++v) {
    const Material m = deck.material_of(v);
    const std::int32_t expected = (m == Material::kHEGas) ? 400 : 100;
    EXPECT_EQ(g.vwgt[static_cast<std::size_t>(v)], expected);
  }
}

TEST(WeightedGraph, RejectsAllZeroCosts) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(4, 4, Material::kFoam);
  const std::array<double, mesh::kMaterialCount> zeros{};
  EXPECT_THROW((void)build_weighted_dual_graph(deck, zeros),
               util::InvalidArgument);
  const std::array<double, mesh::kMaterialCount> negative = {-1.0, 1.0, 1.0,
                                                             1.0};
  EXPECT_THROW((void)build_weighted_dual_graph(deck, negative),
               util::InvalidArgument);
}

TEST(CostAware, BalancesWeightedLoadNotCellCounts) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition part = partition_cost_aware(deck, 16, skewed_costs(), 1);
  const PartitionStats stats(deck, part);

  // Per-PE weighted load: 4 * HE cells + other cells.
  std::vector<double> loads;
  for (const SubdomainInfo& sub : stats.subdomains()) {
    double load = 0.0;
    for (std::size_t m = 0; m < mesh::kMaterialCount; ++m) {
      load += skewed_costs()[m] *
              static_cast<double>(sub.cells_per_material[m]);
    }
    loads.push_back(load);
  }
  const double mean =
      std::accumulate(loads.begin(), loads.end(), 0.0) / loads.size();
  const double max_load = *std::max_element(loads.begin(), loads.end());
  EXPECT_LE(max_load / mean, 1.06);
}

TEST(CostAware, CellCountsIntentionallyImbalanced) {
  // The point of weighting: HE-gas-owning processors get FEWER cells.
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition part = partition_cost_aware(deck, 16, skewed_costs(), 1);
  const auto counts = part.cell_counts();
  const auto [min_it, max_it] =
      std::minmax_element(counts.begin(), counts.end());
  // Cell counts spread far beyond the 2-3% a cell-balanced partition
  // would show (cost ratio 4 forces it).
  EXPECT_GT(static_cast<double>(*max_it) / static_cast<double>(*min_it), 1.5);
}

TEST(CostAware, UniformCostsReduceToCellBalance) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const std::array<double, mesh::kMaterialCount> uniform = {1.0, 1.0, 1.0, 1.0};
  const Partition part = partition_cost_aware(deck, 16, uniform, 1);
  const Graph g = build_dual_graph(deck.grid());
  const PartitionQuality q = evaluate_partition(g, part);
  EXPECT_LE(q.imbalance, 1.03);
  EXPECT_EQ(q.empty_parts, 0);
}

TEST(CostAware, DeterministicForFixedSeed) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const Partition a = partition_cost_aware(deck, 8, skewed_costs(), 7);
  const Partition b = partition_cost_aware(deck, 8, skewed_costs(), 7);
  EXPECT_EQ(a.assignment(), b.assignment());
}

}  // namespace
}  // namespace krak::partition
