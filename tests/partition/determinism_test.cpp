// Determinism contract of the multilevel partitioner (docs/PERFORMANCE.md,
// "Partitioner"): the assignment is a pure function of (graph, parts,
// seed). The checksums below were produced by the fully serial
// reference implementation; every speculative parallel path and the
// coarsening ladder cache must reproduce them bit for bit at every
// thread count. CI runs this suite under ThreadSanitizer as well, so a
// data race in the parallel paths fails even when it happens to produce
// the right answer.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "mesh/deck.hpp"
#include "partition/dualgraph.hpp"
#include "partition/partition.hpp"

namespace {

using namespace krak;

struct ChecksumCase {
  const char* deck;
  std::int32_t parts;
  std::uint64_t seed;
  std::uint64_t checksum;
};

// FNV-1a over the assignment, the same digest the partition store embeds.
std::uint64_t checksum_of(const partition::Partition& part) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const partition::PeId pe : part.assignment()) {
    hash ^= static_cast<std::uint32_t>(pe);
    hash *= 1099511628211ull;
  }
  return hash;
}

mesh::InputDeck make_deck(const std::string& name) {
  if (name == "figure2") return mesh::make_figure2_deck();
  if (name == "small") return mesh::make_standard_deck(mesh::DeckSize::kSmall);
  if (name == "medium") {
    return mesh::make_standard_deck(mesh::DeckSize::kMedium);
  }
  return mesh::make_standard_deck(mesh::DeckSize::kLarge);
}

// Every standard deck at its campaign PE counts (seed 1 is
// ValidationConfig::partition_seed) plus the calibration configurations
// (seed 2006 is CalibrationConfig::seed, medium deck). Recorded from
// the serial reference implementation; any change here is a silent
// change to every measured campaign value and must be deliberate.
const ChecksumCase kCases[] = {
    {"small", 16, 1, 0x5f24542071c7e00cull},
    {"small", 64, 1, 0xb845599a67dcda90ull},
    {"small", 128, 1, 0xeca51fda95fe1790ull},
    {"medium", 16, 1, 0x2eb0be63ac1b25edull},
    {"medium", 64, 1, 0xa289f37a9fe48653ull},
    {"medium", 96, 1, 0x16cda0fbb6fcf6c5ull},
    {"medium", 128, 1, 0x71ce83163875d18full},
    {"medium", 256, 1, 0x2f88c2de7d8d2f20ull},
    {"medium", 512, 1, 0xe68081abd24015bbull},
    {"figure2", 16, 1, 0x014f94e129515955ull},
    {"figure2", 64, 1, 0x8a900109f0e0c22cull},
    {"large", 128, 1, 0xeff45b2b0c7844f8ull},
    {"large", 256, 1, 0xe3d46887b06451e2ull},
    {"large", 257, 1, 0xff2b8cc6ce54ea32ull},
    {"large", 512, 1, 0x58089e31eb230279ull},
    {"medium", 8, 2006, 0x542b19cd811b8dbfull},
    {"medium", 64, 2006, 0x0dc23472cbf16999ull},
    {"medium", 512, 2006, 0x5ff37b31e4443d1aull},
    {"medium", 4096, 2006, 0xec9f2b457fb8db95ull},
};

class MultilevelDeterminismTest : public ::testing::TestWithParam<std::int32_t> {
};

TEST_P(MultilevelDeterminismTest, MatchesSerialReferenceChecksums) {
  const std::int32_t threads = GetParam();
  // A cached ladder would replay coarsening instead of re-running it;
  // clearing first makes each thread count genuinely exercise the
  // parallel matching and aggregation paths.
  partition::clear_multilevel_ladder_cache();
  for (const ChecksumCase& c : kCases) {
    const mesh::InputDeck deck = make_deck(c.deck);
    const partition::Graph graph = partition::build_dual_graph(deck.grid());
    partition::MultilevelOptions options;
    options.threads = threads;
    const partition::Partition part =
        partition::partition_multilevel(graph, c.parts, c.seed, options);
    EXPECT_EQ(checksum_of(part), c.checksum)
        << c.deck << " parts=" << c.parts << " seed=" << c.seed
        << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, MultilevelDeterminismTest,
                         ::testing::Values(1, 2, 8));

// The ladder cache must be output-invariant when part counts of the
// same (deck, seed) interleave: a larger part count stops higher up the
// shared ladder, a later smaller one extends it, and both must match a
// cold computation exactly.
TEST(MultilevelLadderCacheTest, InterleavedPartCountsReplayExactly) {
  partition::clear_multilevel_ladder_cache();
  const mesh::InputDeck deck = make_deck("medium");
  const partition::Graph graph = partition::build_dual_graph(deck.grid());
  // 512 coarsens shallowly, 16 then extends the cached ladder, 256 and
  // 64 replay prefixes of it.
  for (const std::int32_t parts : {512, 16, 256, 64}) {
    const partition::Partition part =
        partition::partition_multilevel(graph, parts, 1);
    std::uint64_t want = 0;
    for (const ChecksumCase& c : kCases) {
      if (std::string(c.deck) == "medium" && c.parts == parts && c.seed == 1) {
        want = c.checksum;
      }
    }
    ASSERT_NE(want, 0u);
    EXPECT_EQ(checksum_of(part), want) << "parts=" << parts;
  }
}

// partition_deck's threads parameter feeds the same machinery; the
// derived ladder key (grid dimensions) must not change the result
// either.
TEST(MultilevelLadderCacheTest, PartitionDeckThreadsAreOutputInvariant) {
  const mesh::InputDeck deck = make_deck("small");
  partition::clear_multilevel_ladder_cache();
  const partition::Partition serial = partition::partition_deck(
      deck, 64, partition::PartitionMethod::kMultilevel, 1, /*threads=*/1);
  partition::clear_multilevel_ladder_cache();
  const partition::Partition parallel = partition::partition_deck(
      deck, 64, partition::PartitionMethod::kMultilevel, 1, /*threads=*/8);
  EXPECT_EQ(serial.assignment(), parallel.assignment());
  EXPECT_EQ(checksum_of(serial), 0xb845599a67dcda90ull);
}

}  // namespace
