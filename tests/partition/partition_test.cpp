#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"

namespace krak::partition {
namespace {

TEST(Partition, RejectsOutOfRangeAssignment) {
  EXPECT_THROW(Partition(2, {0, 1, 2}), util::InvalidArgument);
  EXPECT_THROW(Partition(2, {0, -1}), util::InvalidArgument);
  EXPECT_THROW(Partition(0, {0}), util::InvalidArgument);
  EXPECT_THROW(Partition(1, {}), util::InvalidArgument);
}

TEST(Partition, CellCountsSumToTotal) {
  const Partition p(3, {0, 1, 2, 0, 1, 0});
  const auto counts = p.cell_counts();
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::int64_t{0}),
            p.num_cells());
}

TEST(Partition, CellsOfPeSortedAndComplete) {
  const Partition p(2, {0, 1, 0, 1, 0});
  const auto zero = p.cells_of_pe(0);
  const auto one = p.cells_of_pe(1);
  EXPECT_EQ(zero, (std::vector<std::int64_t>{0, 2, 4}));
  EXPECT_EQ(one, (std::vector<std::int64_t>{1, 3}));
  EXPECT_THROW((void)p.cells_of_pe(2), util::InvalidArgument);
}

TEST(Partition, PeOfChecksRange) {
  const Partition p(1, {0, 0});
  EXPECT_THROW((void)p.pe_of(2), util::InvalidArgument);
  EXPECT_THROW((void)p.pe_of(-1), util::InvalidArgument);
}

TEST(Strips, SizesDifferByAtMostOne) {
  const Partition p = partition_strips(10, 3);
  const auto counts = p.cell_counts();
  EXPECT_EQ(counts[0], 4);
  EXPECT_EQ(counts[1], 3);
  EXPECT_EQ(counts[2], 3);
}

TEST(Strips, AssignmentIsContiguous) {
  const Partition p = partition_strips(9, 3);
  for (std::int64_t cell = 1; cell < 9; ++cell) {
    EXPECT_GE(p.pe_of(cell), p.pe_of(cell - 1));
  }
}

TEST(Strips, OnePartTakesEverything) {
  const Partition p = partition_strips(5, 1);
  for (std::int64_t cell = 0; cell < 5; ++cell) EXPECT_EQ(p.pe_of(cell), 0);
}

TEST(Strips, MorePartsThanCellsRejected) {
  EXPECT_THROW((void)partition_strips(2, 3), util::InvalidArgument);
}

TEST(EvaluatePartition, PerfectStripOnPathGraph) {
  // A 1 x 9 grid partitioned into 3 contiguous strips cuts exactly 2
  // edges.
  const mesh::Grid grid(9, 1);
  const Graph g = build_dual_graph(grid);
  const Partition p = partition_strips(9, 3);
  const PartitionQuality q = evaluate_partition(g, p);
  EXPECT_EQ(q.edge_cut, 2);
  EXPECT_EQ(q.min_cells, 3);
  EXPECT_EQ(q.max_cells, 3);
  EXPECT_DOUBLE_EQ(q.imbalance, 1.0);
  EXPECT_EQ(q.empty_parts, 0);
  EXPECT_EQ(q.max_neighbors, 2);  // the middle strip
}

TEST(EvaluatePartition, DetectsEmptyParts) {
  const mesh::Grid grid(4, 1);
  const Graph g = build_dual_graph(grid);
  const Partition p(3, {0, 0, 1, 1});
  const PartitionQuality q = evaluate_partition(g, p);
  EXPECT_EQ(q.empty_parts, 1);
  EXPECT_EQ(q.min_cells, 0);
}

TEST(EvaluatePartition, SizeMismatchThrows) {
  const Graph g = build_dual_graph(mesh::Grid(2, 2));
  const Partition p(1, {0, 0});
  EXPECT_THROW((void)evaluate_partition(g, p), util::InvalidArgument);
}

TEST(MethodName, AllNamed) {
  EXPECT_EQ(partition_method_name(PartitionMethod::kStrip), "strip");
  EXPECT_EQ(partition_method_name(PartitionMethod::kRcb), "rcb");
  EXPECT_EQ(partition_method_name(PartitionMethod::kMultilevel), "multilevel");
}

}  // namespace
}  // namespace krak::partition
