// Compile-time check that the umbrella header is self-contained and
// exposes the advertised entry points.
#include "krak.hpp"

#include <gtest/gtest.h>

namespace krak {
namespace {

TEST(Umbrella, ExposesMajorEntryPoints) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(4, 4, mesh::Material::kFoam);
  EXPECT_EQ(deck.grid().num_cells(), 16);
  const network::MachineConfig machine = network::make_es45_qsnet();
  EXPECT_EQ(machine.total_pes(), 1024);
  core::CostTable table;
  table.add_sample(1, mesh::Material::kFoam, 10.0, 1e-6);
  EXPECT_TRUE(table.has_samples(1, mesh::Material::kFoam));
  hydro::HydroState state(deck);
  EXPECT_GT(state.total_mass(), 0.0);
}

}  // namespace
}  // namespace krak
