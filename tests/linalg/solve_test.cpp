#include "linalg/solve.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace krak::linalg {
namespace {

TEST(SolveLu, Solves2x2System) {
  const Matrix a = {{2.0, 1.0}, {1.0, 3.0}};
  const std::vector<double> b = {5.0, 10.0};
  const std::vector<double> x = solve_lu(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLu, HandlesPivoting) {
  // Zero on the initial diagonal forces a row swap.
  const Matrix a = {{0.0, 1.0}, {1.0, 0.0}};
  const std::vector<double> b = {2.0, 3.0};
  const std::vector<double> x = solve_lu(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLu, SingularMatrixThrows) {
  const Matrix a = {{1.0, 2.0}, {2.0, 4.0}};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW((void)solve_lu(a, b), util::KrakError);
}

TEST(SolveLu, RejectsNonSquare) {
  const Matrix a(2, 3);
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW((void)solve_lu(a, b), util::InvalidArgument);
}

TEST(SolveLu, RandomSystemsRoundTrip) {
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + trial % 6;
    Matrix a(n, n);
    std::vector<double> x_true(n);
    for (std::size_t r = 0; r < n; ++r) {
      x_true[r] = rng.next_double(-5.0, 5.0);
      for (std::size_t c = 0; c < n; ++c) {
        a(r, c) = rng.next_double(-1.0, 1.0);
      }
      a(r, r) += 4.0;  // diagonally dominant => well conditioned
    }
    const std::vector<double> b = a * std::span<const double>(x_true);
    const std::vector<double> x = solve_lu(a, b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-9) << "trial " << trial;
    }
  }
}

TEST(LeastSquares, ExactSystemRecovered) {
  const Matrix a = {{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const std::vector<double> x_true = {2.0, -3.0};
  const std::vector<double> b = a * std::span<const double>(x_true);
  const LeastSquaresResult result = solve_least_squares(a, b);
  EXPECT_NEAR(result.x[0], 2.0, 1e-12);
  EXPECT_NEAR(result.x[1], -3.0, 1e-12);
  EXPECT_NEAR(result.residual_norm, 0.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedMinimizesResidual) {
  // Fit y = c over observations {1, 2, 3}: the LS answer is the mean.
  const Matrix a = {{1.0}, {1.0}, {1.0}};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  const LeastSquaresResult result = solve_least_squares(a, b);
  EXPECT_NEAR(result.x[0], 2.0, 1e-12);
  EXPECT_NEAR(result.residual_norm, std::sqrt(2.0), 1e-10);
}

TEST(LeastSquares, LineFitMatchesClosedForm) {
  // Fit y = p0 + p1*t over a noisy line.
  const std::vector<double> t = {0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {1.1, 2.9, 5.2, 7.1, 8.8};
  Matrix a(5, 2);
  for (std::size_t i = 0; i < 5; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = t[i];
  }
  const LeastSquaresResult result = solve_least_squares(a, y);
  EXPECT_NEAR(result.x[1], 1.97, 0.05);
  EXPECT_NEAR(result.x[0], 1.08, 0.1);
}

TEST(LeastSquares, RankDeficientThrows) {
  const Matrix a = {{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)solve_least_squares(a, b), util::KrakError);
}

TEST(LeastSquares, UnderdeterminedRejected) {
  const Matrix a(1, 2);
  const std::vector<double> b = {1.0};
  EXPECT_THROW((void)solve_least_squares(a, b), util::InvalidArgument);
}

TEST(Nnls, UnconstrainedOptimumIsReturnedWhenNonNegative) {
  const Matrix a = {{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const std::vector<double> x_true = {2.0, 3.0};
  const std::vector<double> b = a * std::span<const double>(x_true);
  const LeastSquaresResult result = solve_nonnegative_least_squares(a, b);
  EXPECT_NEAR(result.x[0], 2.0, 1e-8);
  EXPECT_NEAR(result.x[1], 3.0, 1e-8);
}

TEST(Nnls, ClampsNegativeComponentToZero) {
  // The unconstrained optimum of this system has a negative second
  // component; NNLS must pin it at zero.
  const Matrix a = {{1.0, 1.0}, {1.0, 1.1}, {1.0, 0.9}};
  const std::vector<double> b = {1.0, 0.7, 1.3};  // decreasing in x2
  const LeastSquaresResult result = solve_nonnegative_least_squares(a, b);
  EXPECT_GE(result.x[0], 0.0);
  EXPECT_DOUBLE_EQ(result.x[1], 0.0);
}

TEST(Nnls, AllZeroRhsGivesZeroSolution) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const std::vector<double> b = {0.0, 0.0, 0.0};
  const LeastSquaresResult result = solve_nonnegative_least_squares(a, b);
  EXPECT_DOUBLE_EQ(result.x[0], 0.0);
  EXPECT_DOUBLE_EQ(result.x[1], 0.0);
  EXPECT_NEAR(result.residual_norm, 0.0, 1e-12);
}

TEST(Nnls, ResidualNeverWorseThanZeroVector) {
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a(6, 3);
    std::vector<double> b(6);
    for (std::size_t r = 0; r < 6; ++r) {
      b[r] = rng.next_double(-2.0, 2.0);
      for (std::size_t c = 0; c < 3; ++c) {
        a(r, c) = rng.next_double(0.0, 1.0);
      }
    }
    const LeastSquaresResult result = solve_nonnegative_least_squares(a, b);
    for (double x : result.x) EXPECT_GE(x, 0.0);
    EXPECT_LE(result.residual_norm, norm2(b) + 1e-9);
  }
}

TEST(Nnls, RecoversCalibrationStyleSystem) {
  // A miniature of calibration Method 2: per-PE material cell counts
  // against per-phase measured times with known per-cell costs.
  util::Rng rng(11);
  const std::vector<double> costs = {4e-6, 2.5e-6, 1.6e-6, 2.6e-6};
  constexpr std::size_t kPes = 24;
  Matrix a(kPes, 4);
  std::vector<double> b(kPes, 0.0);
  for (std::size_t pe = 0; pe < kPes; ++pe) {
    for (std::size_t m = 0; m < 4; ++m) {
      a(pe, m) = std::floor(rng.next_double(0.0, 500.0));
      b[pe] += a(pe, m) * costs[m];
    }
    b[pe] *= 1.0 + rng.next_double(-0.01, 0.01);  // 1% noise
  }
  const LeastSquaresResult result = solve_nonnegative_least_squares(a, b);
  for (std::size_t m = 0; m < 4; ++m) {
    EXPECT_NEAR(result.x[m], costs[m], costs[m] * 0.2) << "material " << m;
  }
}

}  // namespace
}  // namespace krak::linalg
