#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace krak::linalg {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(m(r, c), 0.0);
    }
  }
}

TEST(Matrix, InitializerListLayout) {
  const Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, InitializerListRejectsRaggedRows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), util::InvalidArgument);
}

TEST(Matrix, ZeroDimensionRejected) {
  EXPECT_THROW(Matrix(0, 3), util::InvalidArgument);
  EXPECT_THROW(Matrix(3, 0), util::InvalidArgument);
}

TEST(Matrix, AtChecksBounds) {
  Matrix m(2, 2);
  EXPECT_NO_THROW((void)m.at(1, 1));
  EXPECT_THROW((void)m.at(2, 0), util::InvalidArgument);
  EXPECT_THROW((void)m.at(0, 2), util::InvalidArgument);
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, TransposeSwapsIndices) {
  const Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, MultiplyKnownProduct) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b = {{5.0, 6.0}, {7.0, 8.0}};
  const Matrix ab = a * b;
  const Matrix expected = {{19.0, 22.0}, {43.0, 50.0}};
  EXPECT_EQ(ab, expected);
}

TEST(Matrix, MultiplyByIdentityIsIdentityOperation) {
  const Matrix a = {{1.5, -2.0, 0.25}, {0.0, 3.0, 7.0}};
  const Matrix result = a * Matrix::identity(3);
  EXPECT_EQ(result, a);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW((void)(a * b), util::InvalidArgument);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const std::vector<double> x = {1.0, -1.0};
  const std::vector<double> y = a * std::span<const double>(x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(Matrix, AdditionAndSubtraction) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b = {{4.0, 3.0}, {2.0, 1.0}};
  const Matrix sum = a + b;
  const Matrix expected_sum = {{5.0, 5.0}, {5.0, 5.0}};
  EXPECT_EQ(sum, expected_sum);
  EXPECT_EQ(sum - b, a);
}

TEST(Matrix, MaxAbs) {
  const Matrix m = {{1.0, -7.5}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.max_abs(), 7.5);
  EXPECT_DOUBLE_EQ(Matrix{}.max_abs(), 0.0);
}

TEST(Matrix, RowSpanViewsData) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  auto row = m.row(1);
  ASSERT_EQ(row.size(), 2u);
  row[0] = 30.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 30.0);
  EXPECT_THROW((void)m.row(2), util::InvalidArgument);
}

TEST(VectorOps, Norm2AndDot) {
  const std::vector<double> a = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  const std::vector<double> short_vec = {1.0};
  EXPECT_THROW((void)dot(a, short_vec), util::InvalidArgument);
}

}  // namespace
}  // namespace krak::linalg
