#include "simapp/costmodel.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace krak::simapp {
namespace {

using mesh::Material;

std::array<std::int64_t, mesh::kMaterialCount> uniform(Material m,
                                                       std::int64_t n) {
  std::array<std::int64_t, mesh::kMaterialCount> counts{};
  counts[mesh::material_index(m)] = n;
  return counts;
}

TEST(CostEngine, PhaseRangeChecked) {
  const ComputationCostEngine engine;
  const auto counts = uniform(Material::kFoam, 10);
  EXPECT_THROW((void)engine.subgrid_time(0, counts), util::InvalidArgument);
  EXPECT_THROW((void)engine.subgrid_time(16, counts), util::InvalidArgument);
  EXPECT_NO_THROW((void)engine.subgrid_time(1, counts));
  EXPECT_NO_THROW((void)engine.subgrid_time(kPhaseCount, counts));
}

TEST(CostEngine, EmptySubgridIsFree) {
  const ComputationCostEngine engine;
  const std::array<std::int64_t, mesh::kMaterialCount> empty{};
  for (std::int32_t phase = 1; phase <= kPhaseCount; ++phase) {
    EXPECT_DOUBLE_EQ(engine.subgrid_time(phase, empty), 0.0);
  }
}

TEST(CostEngine, NegativeCellsRejected) {
  const ComputationCostEngine engine;
  std::array<std::int64_t, mesh::kMaterialCount> counts{};
  counts[0] = -1;
  EXPECT_THROW((void)engine.subgrid_time(1, counts), util::InvalidArgument);
}

TEST(CostEngine, TimeGrowsWithCells) {
  const ComputationCostEngine engine;
  for (std::int32_t phase = 1; phase <= kPhaseCount; ++phase) {
    double previous = 0.0;
    for (std::int64_t n = 1; n <= 1 << 20; n *= 4) {
      const double t = engine.uniform_subgrid_time(phase, Material::kHEGas, n);
      EXPECT_GT(t, previous) << "phase " << phase << " n " << n;
      previous = t;
    }
  }
}

TEST(CostEngine, SubgridTimeApproachesFloorAsCellsShrink) {
  // Figure 3's observation: "computation time per subgrid approaches a
  // constant regardless of the number of cells".
  const ComputationCostEngine engine;
  const double t1 = engine.uniform_subgrid_time(2, Material::kFoam, 1);
  const double floor = engine.phase_law(2).floor;
  EXPECT_LT((t1 - floor) / floor, 0.05);
}

TEST(CostEngine, PerCellCostHasKneeShape) {
  // Per-cell cost decreases from tiny subgrids to the asymptote.
  const ComputationCostEngine engine;
  const double tiny = engine.per_cell_cost(2, Material::kFoam, 2);
  const double mid = engine.per_cell_cost(2, Material::kFoam, 1000);
  const double large = engine.per_cell_cost(2, Material::kFoam, 500000);
  EXPECT_GT(tiny, 10.0 * large);
  EXPECT_GT(mid, large);
}

TEST(CostEngine, PerCellCostFlatForLargeSubgrids) {
  const ComputationCostEngine engine;
  const double a = engine.per_cell_cost(6, Material::kHEGas, 200000);
  const double b = engine.per_cell_cost(6, Material::kHEGas, 800000);
  EXPECT_NEAR(a / b, 1.0, 0.01);
}

TEST(CostEngine, MaterialDependentPhasesOrderMaterials) {
  // Material-dependent phases: HE gas most expensive, foam cheapest,
  // aluminum layers nearly identical (Figure 2's phase 14 pattern).
  const ComputationCostEngine engine;
  constexpr std::int64_t n = 10000;
  for (std::int32_t phase : {2, 3, 6, 8, 14}) {
    const double he = engine.uniform_subgrid_time(phase, Material::kHEGas, n);
    const double foam = engine.uniform_subgrid_time(phase, Material::kFoam, n);
    const double al_in =
        engine.uniform_subgrid_time(phase, Material::kAluminumInner, n);
    const double al_out =
        engine.uniform_subgrid_time(phase, Material::kAluminumOuter, n);
    EXPECT_GT(he, al_in) << "phase " << phase;
    EXPECT_GT(al_in, foam) << "phase " << phase;
    EXPECT_NEAR(al_in / al_out, 1.0, 0.1) << "phase " << phase;
  }
}

TEST(CostEngine, MaterialIndependentPhasesIgnoreMaterial) {
  const ComputationCostEngine engine;
  constexpr std::int64_t n = 5000;
  for (std::int32_t phase : {1, 4, 5, 7, 9, 10, 11, 12, 13, 15}) {
    const double he = engine.uniform_subgrid_time(phase, Material::kHEGas, n);
    for (Material m : mesh::all_materials()) {
      EXPECT_DOUBLE_EQ(engine.uniform_subgrid_time(phase, m, n), he)
          << "phase " << phase;
    }
    EXPECT_DOUBLE_EQ(engine.material_factor(phase, Material::kHEGas), 1.0);
  }
}

TEST(CostEngine, MixedSubgridSumsMaterialContributions) {
  // For a material-independent phase, a mixed subgrid must cost the
  // same as a uniform one of equal total size.
  const ComputationCostEngine engine;
  std::array<std::int64_t, mesh::kMaterialCount> mixed = {250, 250, 250, 250};
  const double mixed_time = engine.subgrid_time(5, mixed);
  const double uniform_time =
      engine.uniform_subgrid_time(5, Material::kFoam, 1000);
  EXPECT_NEAR(mixed_time, uniform_time, 1e-15);
}

TEST(CostEngine, MeasurementNoiseIsSmallAndUnbiased) {
  const ComputationCostEngine engine;
  util::Rng rng(99);
  const auto counts = uniform(Material::kHEGas, 4096);
  const double truth = engine.subgrid_time(6, counts);
  util::OnlineStats stats;
  for (int i = 0; i < 5000; ++i) {
    stats.add(engine.measured_subgrid_time(6, counts, rng) / truth);
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.002);
  EXPECT_NEAR(stats.stddev(), engine.noise_sigma(), 0.002);
}

TEST(CostEngine, NoiseSigmaConfigurable) {
  ComputationCostEngine engine;
  engine.set_noise_sigma(0.0);
  util::Rng rng(1);
  const auto counts = uniform(Material::kFoam, 100);
  EXPECT_DOUBLE_EQ(engine.measured_subgrid_time(3, counts, rng),
                   engine.subgrid_time(3, counts));
  EXPECT_THROW(engine.set_noise_sigma(-0.1), util::InvalidArgument);
  EXPECT_THROW(engine.set_noise_sigma(1.0), util::InvalidArgument);
}

TEST(CostEngine, ComputeSpeedupScalesAllCosts) {
  ComputationCostEngine fast;
  fast.set_compute_speedup(2.0);
  const ComputationCostEngine base;
  const auto counts = uniform(Material::kHEGas, 1000);
  for (std::int32_t phase = 1; phase <= kPhaseCount; ++phase) {
    EXPECT_NEAR(fast.subgrid_time(phase, counts),
                base.subgrid_time(phase, counts) / 2.0, 1e-15);
  }
  EXPECT_THROW(fast.set_compute_speedup(0.0), util::InvalidArgument);
}

TEST(CostEngine, Phase2HasLargestFloor) {
  // The paper singles out phase 2 as the knee-error phase; our ground
  // truth gives it the dominant fixed overhead.
  const ComputationCostEngine engine;
  for (std::int32_t phase = 1; phase <= kPhaseCount; ++phase) {
    if (phase == 2) continue;
    EXPECT_GT(engine.phase_law(2).floor, engine.phase_law(phase).floor);
  }
}

/// The per-cell cost curve must be convex enough near the knee that
/// linear interpolation between geometric samples overestimates —
/// the mechanism behind Table 5's errors.
class KneeCurvatureTest : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(KneeCurvatureTest, MidpointInterpolationErrsNearKnee) {
  const ComputationCostEngine engine;
  const std::int32_t phase = GetParam();
  const double at32 = engine.per_cell_cost(phase, Material::kHEGas, 32);
  const double at128 = engine.per_cell_cost(phase, Material::kHEGas, 128);
  const double at64 = engine.per_cell_cost(phase, Material::kHEGas, 64);
  const double interpolated = at32 + (at128 - at32) * (64.0 - 32.0) / 96.0;
  // Not equal: the curve bends at the knee.
  EXPECT_GT(std::abs(interpolated - at64) / at64, 0.01) << "phase " << phase;
}

INSTANTIATE_TEST_SUITE_P(KneePhases, KneeCurvatureTest,
                         ::testing::Values(2, 7, 9));

}  // namespace
}  // namespace krak::simapp
