#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "fault/plan.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "partition/partition.hpp"
#include "simapp/simkrak.hpp"

namespace krak::simapp {
namespace {

// Golden determinism contract of the schedule-replay optimization: the
// replayed op stream must be indistinguishable from the per-iteration
// rebuild it replaced, down to the last ulp of every simulated time.

struct Fixture {
  mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  network::MachineConfig machine = network::make_es45_qsnet();
  ComputationCostEngine engine;

  [[nodiscard]] SimKrakResult run(std::int32_t pes,
                                  SimKrakOptions options) const {
    const partition::Partition part = partition::partition_deck(
        deck, pes, partition::PartitionMethod::kMultilevel, 1);
    return SimKrak(deck, part, machine, engine, options).run();
  }
};

void expect_bit_identical(const SimKrakResult& replayed,
                          const SimKrakResult& rebuilt) {
  // Exact equality throughout: EXPECT_EQ on doubles, not EXPECT_NEAR.
  EXPECT_EQ(replayed.total_time, rebuilt.total_time);
  EXPECT_EQ(replayed.time_per_iteration, rebuilt.time_per_iteration);
  for (std::size_t p = 0; p < replayed.phase_times.size(); ++p) {
    EXPECT_EQ(replayed.phase_times[p], rebuilt.phase_times[p]) << "phase " << p;
  }
  EXPECT_EQ(replayed.events_processed, rebuilt.events_processed);
  EXPECT_EQ(replayed.traffic.point_to_point_messages,
            rebuilt.traffic.point_to_point_messages);
  EXPECT_EQ(replayed.traffic.point_to_point_bytes,
            rebuilt.traffic.point_to_point_bytes);
  EXPECT_EQ(replayed.traffic.allreduces, rebuilt.traffic.allreduces);
  EXPECT_EQ(replayed.traffic.broadcasts, rebuilt.traffic.broadcasts);
  EXPECT_EQ(replayed.traffic.gathers, rebuilt.traffic.gathers);
  EXPECT_EQ(replayed.fault_stats.fault_delay_seconds,
            rebuilt.fault_stats.fault_delay_seconds);
  EXPECT_EQ(replayed.failures.size(), rebuilt.failures.size());
  ASSERT_EQ(replayed.rank_breakdown.size(), rebuilt.rank_breakdown.size());
  for (std::size_t r = 0; r < replayed.rank_breakdown.size(); ++r) {
    const sim::RankTimeBreakdown& a = replayed.rank_breakdown[r];
    const sim::RankTimeBreakdown& b = rebuilt.rank_breakdown[r];
    EXPECT_EQ(a.compute, b.compute) << "rank " << r;
    EXPECT_EQ(a.send_overhead, b.send_overhead) << "rank " << r;
    EXPECT_EQ(a.recv_overhead, b.recv_overhead) << "rank " << r;
    EXPECT_EQ(a.send_wait, b.send_wait) << "rank " << r;
    EXPECT_EQ(a.recv_wait, b.recv_wait) << "rank " << r;
    EXPECT_EQ(a.collective_wait, b.collective_wait) << "rank " << r;
    EXPECT_EQ(a.collective_cost, b.collective_cost) << "rank " << r;
    EXPECT_EQ(a.fault_delay, b.fault_delay) << "rank " << r;
    EXPECT_EQ(a.recovery, b.recovery) << "rank " << r;
    EXPECT_EQ(a.total_seconds(), b.total_seconds()) << "rank " << r;
  }
}

void run_both_and_compare(const Fixture& f, std::int32_t pes,
                          SimKrakOptions options) {
  options.replay_schedules = true;
  const SimKrakResult replayed = f.run(pes, options);
  options.replay_schedules = false;
  const SimKrakResult rebuilt = f.run(pes, options);
  expect_bit_identical(replayed, rebuilt);
}

TEST(SimKrakReplay, BitIdenticalToRebuildAcrossPeCounts) {
  const Fixture f;
  for (const std::int32_t pes : {16, 64, 128}) {
    SCOPED_TRACE(pes);
    SimKrakOptions options;
    options.iterations = 3;  // noise on: 3 distinct draws per phase
    run_both_and_compare(f, pes, options);
  }
}

TEST(SimKrakReplay, BitIdenticalWithoutNoise) {
  const Fixture f;
  SimKrakOptions options;
  options.iterations = 2;
  options.enable_noise = false;
  run_both_and_compare(f, 64, options);
}

TEST(SimKrakReplay, BitIdenticalWithFaultPlan) {
  const Fixture f;
  for (const std::int32_t pes : {16, 64, 128}) {
    SCOPED_TRACE(pes);
    SimKrakOptions options;
    options.iterations = 3;
    fault::OneOffDelay delay;
    delay.rank = 1;
    delay.phase = 3;
    delay.iteration = 1;
    delay.seconds = 0.01;
    options.faults.delays.push_back(delay);
    options.faults.slowdowns.push_back({fault::kAllRanks, 1.02});
    options.faults.seed = 7;
    run_both_and_compare(f, pes, options);
  }
}

}  // namespace
}  // namespace krak::simapp
