// Oracle-identity determinism at synthetic scale: a kraksynth deck
// spread over 20k+ ranks — far past the standard decks' PE range — must
// produce bit-identical results from the sharded engine with the full
// production stack on (hierarchical network, NIC contention, noise).
// This is the scaled-down twin of BENCH_PR9's large_100k replay
// (docs/PERFORMANCE.md, "The 100k-rank regime"); it stays outside the
// TSan determinism filters (SimulatorParallel*/SimKrakParallel*), which
// would be far too slow at this rank count.

#include <gtest/gtest.h>

#include <cstdint>

#include "mesh/synthetic.hpp"
#include "network/machine.hpp"
#include "partition/partition.hpp"
#include "simapp/simkrak.hpp"

namespace krak::simapp {
namespace {

TEST(SimKrakSynthetic, TwentyThousandRankIdentityWithFullStack) {
  const std::int32_t ranks = 20'480;
  const mesh::InputDeck deck =
      mesh::make_synthetic_deck(mesh::paper_synthetic_spec(1024, 128));
  ASSERT_GE(deck.grid().num_cells(), 100'000);

  // RCB, not multilevel: at this part count the coarsening pipeline is
  // far slower than the simulation itself (the same choice the
  // large-deck bench scenarios make).
  const partition::Partition partition = partition::partition_deck(
      deck, ranks, partition::PartitionMethod::kRcb, /*seed=*/1);

  network::MachineConfig machine = network::make_es45_qsnet();
  machine.nodes = (ranks + machine.pes_per_node - 1) / machine.pes_per_node;

  const ComputationCostEngine engine;
  SimKrakOptions options;
  options.iterations = 1;
  options.hierarchical_network = true;
  options.nic_contention = true;

  const SimKrak serial_app(deck, partition, machine, engine, options);
  const SimKrakResult serial = serial_app.run();
  EXPECT_TRUE(serial.failures.empty());
  EXPECT_GT(serial.total_time, 0.0);

  SimKrakOptions parallel_options = options;
  parallel_options.sim_threads = 8;
  const SimKrak parallel_app(deck, partition, machine, engine,
                             parallel_options);
  const SimKrakResult parallel = parallel_app.run();

  EXPECT_EQ(serial.total_time, parallel.total_time);
  EXPECT_EQ(serial.time_per_iteration, parallel.time_per_iteration);
  for (std::size_t p = 0; p < serial.phase_times.size(); ++p) {
    EXPECT_EQ(serial.phase_times[p], parallel.phase_times[p]) << "phase " << p;
  }
  EXPECT_EQ(serial.totals.compute, parallel.totals.compute);
  EXPECT_EQ(serial.totals.p2p_seconds(), parallel.totals.p2p_seconds());
  EXPECT_EQ(serial.totals.collective_seconds(),
            parallel.totals.collective_seconds());
  ASSERT_EQ(serial.rank_breakdown.size(), parallel.rank_breakdown.size());
  for (std::size_t r = 0; r < serial.rank_breakdown.size(); ++r) {
    if (serial.rank_breakdown[r].total_seconds() !=
        parallel.rank_breakdown[r].total_seconds()) {
      FAIL() << "rank " << r << " breakdown diverged";
    }
  }
  EXPECT_EQ(serial.traffic.point_to_point_messages,
            parallel.traffic.point_to_point_messages);
  EXPECT_EQ(serial.traffic.point_to_point_bytes,
            parallel.traffic.point_to_point_bytes);
  EXPECT_EQ(serial.traffic.allreduces, parallel.traffic.allreduces);
  EXPECT_EQ(serial.traffic.broadcasts, parallel.traffic.broadcasts);
  EXPECT_EQ(serial.traffic.gathers, parallel.traffic.gathers);
  EXPECT_EQ(serial.failures.size(), parallel.failures.size());
}

}  // namespace
}  // namespace krak::simapp
