// Fault-plan behavior of the full SimKrak replay (docs/RESILIENCE.md):
// the empty-plan bit-identity contract, delay propagation through the
// reduction-fenced iteration, crash recovery accounting, and the
// structured failures a hang-inducing plan produces.

#include <gtest/gtest.h>

#include <cmath>

#include "fault/plan.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "partition/partition.hpp"
#include "simapp/simkrak.hpp"

namespace krak::simapp {
namespace {

struct Fixture {
  mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  network::MachineConfig machine = network::make_es45_qsnet();
  ComputationCostEngine engine;

  [[nodiscard]] partition::Partition partition(std::int32_t pes) const {
    return partition::partition_deck(
        deck, pes, partition::PartitionMethod::kMultilevel, 1);
  }

  [[nodiscard]] SimKrakResult run(std::int32_t pes,
                                  const SimKrakOptions& options) const {
    const SimKrak app(deck, partition(pes), machine, engine, options);
    return app.run();
  }
};

SimKrakOptions quiet_options() {
  SimKrakOptions options;
  options.iterations = 2;
  options.enable_noise = false;  // bit-identity needs a noise-free baseline
  return options;
}

TEST(SimKrakFaults, EmptyPlanIsBitIdenticalToNoPlan) {
  const Fixture f;
  const SimKrakOptions options = quiet_options();
  SimKrakOptions with_empty_plan = options;
  with_empty_plan.faults = fault::FaultPlan{};  // explicit empty plan

  const SimKrakResult a = f.run(8, options);
  const SimKrakResult b = f.run(8, with_empty_plan);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.time_per_iteration, b.time_per_iteration);
  ASSERT_EQ(a.rank_breakdown.size(), b.rank_breakdown.size());
  for (std::size_t r = 0; r < a.rank_breakdown.size(); ++r) {
    EXPECT_EQ(a.rank_breakdown[r].compute, b.rank_breakdown[r].compute);
    EXPECT_EQ(a.rank_breakdown[r].total_seconds(),
              b.rank_breakdown[r].total_seconds());
  }
  EXPECT_EQ(b.fault_stats.injections, 0);
  EXPECT_FALSE(b.failed());
}

TEST(SimKrakFaults, OneOffDelayPropagatesWithExactIdentity) {
  const Fixture f;
  const SimKrakOptions baseline_options = quiet_options();
  const SimKrakResult baseline = f.run(8, baseline_options);

  SimKrakOptions faulted_options = baseline_options;
  fault::OneOffDelay delay;
  delay.rank = 0;
  delay.phase = 3;
  delay.iteration = 1;
  delay.seconds = 0.05;
  faulted_options.faults.delays.push_back(delay);
  const SimKrakResult faulted = f.run(8, faulted_options);

  ASSERT_FALSE(faulted.failed());
  // Exactly the injected delay was charged, to the victim rank alone.
  EXPECT_DOUBLE_EQ(faulted.fault_stats.fault_delay_seconds, 0.05);
  EXPECT_DOUBLE_EQ(faulted.rank_breakdown[0].fault_delay, 0.05);
  for (std::size_t r = 1; r < faulted.rank_breakdown.size(); ++r) {
    EXPECT_DOUBLE_EQ(faulted.rank_breakdown[r].fault_delay, 0.0);
  }
  // With every phase fenced by a reduction the delay propagates into
  // the makespan (near-zero absorption), and never more than itself.
  const double propagated = faulted.total_time - baseline.total_time;
  EXPECT_GT(propagated, 0.04);
  EXPECT_LE(propagated, 0.05 * (1.0 + 1e-9));
  // The per-rank identity finish = compute + p2p + collective + fault
  // holds to round-off in the perturbed run.
  for (const sim::RankTimeBreakdown& rank : faulted.rank_breakdown) {
    const double identity = rank.compute + rank.p2p_seconds() +
                            rank.collective_seconds() + rank.fault_seconds();
    EXPECT_NEAR(identity, rank.total_seconds(), 1e-12);
  }
}

TEST(SimKrakFaults, CrashChargesRecoveryOnce) {
  const Fixture f;
  SimKrakOptions options = quiet_options();
  fault::RankCrash crash;
  crash.rank = 2;
  crash.phase = 5;
  crash.iteration = 0;
  crash.restart_s = 0.02;
  crash.checkpoint_interval_s = 0.01;
  options.faults.crashes.push_back(crash);
  const SimKrakResult result = f.run(8, options);

  ASSERT_FALSE(result.failed());
  // Daly accounting: restart + interval/2, on the crashed rank only.
  EXPECT_DOUBLE_EQ(result.fault_stats.recovery_seconds, 0.02 + 0.005);
  EXPECT_DOUBLE_EQ(result.rank_breakdown[2].recovery, 0.025);
  EXPECT_DOUBLE_EQ(result.rank_breakdown[0].recovery, 0.0);
}

TEST(SimKrakFaults, SameSeedAndPlanAreBitIdentical) {
  const Fixture f;
  SimKrakOptions options = quiet_options();
  options.faults.seed = 99;
  fault::MessageFaultModel model;
  model.drop_probability = 0.2;
  model.retransmit_timeout_s = 1e-5;
  model.max_retries = 20;
  options.faults.message_faults.push_back(model);
  options.faults.slowdowns.push_back({fault::kAllRanks, 1.05});

  const SimKrakResult a = f.run(8, options);
  const SimKrakResult b = f.run(8, options);
  ASSERT_FALSE(a.failed());
  EXPECT_GT(a.fault_stats.injections, 0);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.fault_stats.retransmits, b.fault_stats.retransmits);
  EXPECT_EQ(a.fault_stats.fault_delay_seconds, b.fault_stats.fault_delay_seconds);
  for (std::size_t r = 0; r < a.rank_breakdown.size(); ++r) {
    EXPECT_EQ(a.rank_breakdown[r].total_seconds(),
              b.rank_breakdown[r].total_seconds());
    EXPECT_EQ(a.rank_breakdown[r].fault_delay,
              b.rank_breakdown[r].fault_delay);
  }
}

TEST(SimKrakFaults, HangInducingPlanReturnsStructuredFailures) {
  const Fixture f;
  SimKrakOptions options = quiet_options();
  options.iterations = 1;
  fault::MessageFaultModel model;
  model.drop_probability = 0.9;
  model.max_retries = 0;  // nearly every message is lost for good
  options.faults.message_faults.push_back(model);
  const SimKrakResult result = f.run(8, options);

  ASSERT_TRUE(result.failed());
  EXPECT_GT(result.fault_stats.messages_lost, 0);
  // Some starved receiver must carry the lost-message diagnosis (other
  // ranks may be reported as deadlocked in the collectives behind it).
  bool saw_lost_message = false;
  for (const sim::SimFailure& failure : result.failures) {
    EXPECT_GE(failure.rank, 0);
    EXPECT_FALSE(failure.to_string().empty());
    if (failure.kind == sim::SimFailure::Kind::kLostMessage) {
      saw_lost_message = true;
    }
  }
  EXPECT_TRUE(saw_lost_message);
}

}  // namespace
}  // namespace krak::simapp
