#include "simapp/phases.hpp"

#include <gtest/gtest.h>

#include "network/collectives.hpp"

namespace krak::simapp {
namespace {

TEST(Phases, FifteenPhasesNumberedInOrder) {
  const auto& phases = iteration_phases();
  ASSERT_EQ(phases.size(), 15u);
  for (std::size_t i = 0; i < phases.size(); ++i) {
    EXPECT_EQ(phases[i].number, static_cast<std::int32_t>(i + 1));
  }
}

TEST(Phases, SyncPointsMatchTable1) {
  // Table 1's sync-point column: 2,1,3,1,1,3,1,1,1,1,2,1,1,1,2.
  const std::array<std::int32_t, 15> expected = {2, 1, 3, 1, 1, 3, 1, 1,
                                                 1, 1, 2, 1, 1, 1, 2};
  const auto& phases = iteration_phases();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    EXPECT_EQ(phases[i].sync_points(), expected[i]) << "phase " << i + 1;
  }
}

TEST(Phases, ActionsMatchTable1) {
  const auto& phases = iteration_phases();
  EXPECT_EQ(phases[0].action, PhaseAction::kBroadcastPair);
  EXPECT_EQ(phases[1].action, PhaseAction::kBoundaryExchange);
  EXPECT_EQ(phases[2].action, PhaseAction::kComputationOnly);
  EXPECT_EQ(phases[3].action, PhaseAction::kGhostUpdate8);
  EXPECT_EQ(phases[4].action, PhaseAction::kGhostUpdate16);
  EXPECT_EQ(phases[5].action, PhaseAction::kComputationOnly);
  EXPECT_EQ(phases[6].action, PhaseAction::kGhostUpdate16);
  for (std::size_t i = 7; i <= 13; ++i) {
    EXPECT_EQ(phases[i].action, PhaseAction::kComputationOnly)
        << "phase " << i + 1;
  }
  EXPECT_EQ(phases[14].action, PhaseAction::kBroadcastPair);
}

TEST(Phases, GhostBytesMatchTable1) {
  const auto& phases = iteration_phases();
  EXPECT_DOUBLE_EQ(phases[3].ghost_bytes(), 8.0);   // phase 4
  EXPECT_DOUBLE_EQ(phases[4].ghost_bytes(), 16.0);  // phase 5
  EXPECT_DOUBLE_EQ(phases[6].ghost_bytes(), 16.0);  // phase 7
  EXPECT_DOUBLE_EQ(phases[0].ghost_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(phases[2].ghost_bytes(), 0.0);
}

TEST(Phases, PointToPointFlagCoversExchangeAndGhostPhases) {
  const auto& phases = iteration_phases();
  int p2p_phases = 0;
  for (const PhaseSpec& phase : phases) {
    if (phase.has_point_to_point()) ++p2p_phases;
  }
  // Phases 2, 4, 5, 7.
  EXPECT_EQ(p2p_phases, 4);
}

TEST(Phases, SyncSizesAreFourOrEightBytes) {
  for (const PhaseSpec& phase : iteration_phases()) {
    for (double size : phase.sync_sizes) {
      EXPECT_TRUE(size == 4.0 || size == 8.0) << "phase " << phase.number;
    }
  }
}

TEST(Phases, DerivedCollectiveCountsMatchTable4) {
  // The phase table's implied collective inventory must equal Table 4:
  // 3+3 broadcasts, 9 4-byte + 13 8-byte allreduces, 1 gather.
  const DerivedCollectiveCounts derived = derive_collective_counts();
  const network::CollectiveInventory table4;
  EXPECT_EQ(derived.bcast_4b, table4.bcast_4b);
  EXPECT_EQ(derived.bcast_8b, table4.bcast_8b);
  EXPECT_EQ(derived.allreduce_4b, table4.allreduce_4b);
  EXPECT_EQ(derived.allreduce_8b, table4.allreduce_8b);
  EXPECT_EQ(derived.gather_32b, table4.gather_32b);
}

TEST(Phases, TotalSyncPointsEqualTotalAllreduces) {
  // Consistency between Table 1 and Table 4: 22 sync points = 22
  // allreduce operations per iteration.
  std::int32_t total_syncs = 0;
  for (const PhaseSpec& phase : iteration_phases()) {
    total_syncs += phase.sync_points();
  }
  EXPECT_EQ(total_syncs, network::CollectiveInventory{}.total_allreduces());
}

TEST(Phases, BoundaryExchangeConstantsMatchSection41) {
  EXPECT_DOUBLE_EQ(kBoundaryBytesPerFace, 12.0);
  EXPECT_EQ(kBoundaryMessagesPerStep, 6);
  EXPECT_EQ(kBoundaryAugmentedMessages, 2);
}

TEST(Phases, ActionNamesAreDescriptive) {
  EXPECT_NE(phase_action_name(PhaseAction::kBroadcastPair).find("Broadcast"),
            std::string_view::npos);
  EXPECT_NE(
      phase_action_name(PhaseAction::kBoundaryExchange).find("Boundary"),
      std::string_view::npos);
  EXPECT_NE(phase_action_name(PhaseAction::kGhostUpdate8).find("8 bytes"),
            std::string_view::npos);
  EXPECT_NE(phase_action_name(PhaseAction::kGhostUpdate16).find("16 bytes"),
            std::string_view::npos);
}

}  // namespace
}  // namespace krak::simapp
