// SimKrak-level bit-identity of the conservative parallel simulation
// engine (SimKrakOptions::sim_threads): the full validation workload —
// the 15-phase iteration with noise, the hierarchical network, and
// fault plans — must produce exactly the same SimKrakResult at every
// thread count. This mirrors the partitioner's determinism suite and
// runs under TSan in CI (tsan-determinism job).

#include <gtest/gtest.h>

#include <cstdint>

#include "fault/plan.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "partition/partition.hpp"
#include "simapp/simkrak.hpp"

namespace krak::simapp {
namespace {

struct Fixture {
  mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  network::MachineConfig machine = network::make_es45_qsnet();
  ComputationCostEngine engine;

  [[nodiscard]] partition::Partition partition(std::int32_t pes) const {
    return partition::partition_deck(
        deck, pes, partition::PartitionMethod::kMultilevel, 1);
  }

  [[nodiscard]] SimKrakResult run(std::int32_t pes,
                                  const SimKrakOptions& options) const {
    const SimKrak app(deck, partition(pes), machine, engine, options);
    return app.run();
  }
};

void expect_identical(const SimKrakResult& oracle,
                      const SimKrakResult& parallel) {
  EXPECT_EQ(oracle.total_time, parallel.total_time);
  EXPECT_EQ(oracle.time_per_iteration, parallel.time_per_iteration);
  for (std::size_t p = 0; p < oracle.phase_times.size(); ++p) {
    EXPECT_EQ(oracle.phase_times[p], parallel.phase_times[p]) << "phase " << p;
  }
  EXPECT_EQ(oracle.totals.compute, parallel.totals.compute);
  EXPECT_EQ(oracle.totals.p2p_seconds(), parallel.totals.p2p_seconds());
  EXPECT_EQ(oracle.totals.collective_seconds(),
            parallel.totals.collective_seconds());
  EXPECT_EQ(oracle.totals.fault_seconds(), parallel.totals.fault_seconds());
  ASSERT_EQ(oracle.rank_breakdown.size(), parallel.rank_breakdown.size());
  for (std::size_t r = 0; r < oracle.rank_breakdown.size(); ++r) {
    EXPECT_EQ(oracle.rank_breakdown[r].total_seconds(),
              parallel.rank_breakdown[r].total_seconds())
        << "rank " << r;
    EXPECT_EQ(oracle.rank_breakdown[r].compute,
              parallel.rank_breakdown[r].compute)
        << "rank " << r;
  }
  EXPECT_EQ(oracle.traffic.point_to_point_messages,
            parallel.traffic.point_to_point_messages);
  EXPECT_EQ(oracle.traffic.point_to_point_bytes,
            parallel.traffic.point_to_point_bytes);
  EXPECT_EQ(oracle.traffic.allreduces, parallel.traffic.allreduces);
  EXPECT_EQ(oracle.traffic.broadcasts, parallel.traffic.broadcasts);
  EXPECT_EQ(oracle.traffic.gathers, parallel.traffic.gathers);
  EXPECT_EQ(oracle.fault_stats.injections, parallel.fault_stats.injections);
  EXPECT_EQ(oracle.fault_stats.retransmits, parallel.fault_stats.retransmits);
  EXPECT_EQ(oracle.fault_stats.messages_lost,
            parallel.fault_stats.messages_lost);
  EXPECT_EQ(oracle.fault_stats.fault_delay_seconds,
            parallel.fault_stats.fault_delay_seconds);
  EXPECT_EQ(oracle.fault_stats.recovery_seconds,
            parallel.fault_stats.recovery_seconds);
  ASSERT_EQ(oracle.failures.size(), parallel.failures.size());
  for (std::size_t i = 0; i < oracle.failures.size(); ++i) {
    EXPECT_EQ(oracle.failures[i].to_string(), parallel.failures[i].to_string());
  }
}

TEST(SimKrakParallel, NoisyIterationIdenticalAcrossThreadCounts) {
  const Fixture f;
  SimKrakOptions options;
  options.iterations = 2;  // noise on: the production configuration
  const SimKrakResult reference = f.run(16, options);
  for (std::int32_t threads : {2, 8}) {
    SimKrakOptions parallel = options;
    parallel.sim_threads = threads;
    expect_identical(reference, f.run(16, parallel));
  }
}

TEST(SimKrakParallel, HierarchicalNetworkIdenticalAcrossThreadCounts) {
  // The devirtualized hierarchical network plus node-aligned sharding:
  // cross-shard messages are exactly the inter-node ones.
  const Fixture f;
  SimKrakOptions options;
  options.iterations = 2;
  options.hierarchical_network = true;
  const SimKrakResult reference = f.run(16, options);
  for (std::int32_t threads : {2, 8}) {
    SimKrakOptions parallel = options;
    parallel.sim_threads = threads;
    expect_identical(reference, f.run(16, parallel));
  }
}

TEST(SimKrakParallel, FaultPlanIdenticalAcrossThreadCounts) {
  const Fixture f;
  SimKrakOptions options;
  options.iterations = 2;
  options.enable_noise = false;
  options.faults.seed = 99;
  options.faults.slowdowns.push_back({fault::kAllRanks, 1.05});
  fault::OneOffDelay delay;
  delay.rank = 3;
  delay.phase = 4;
  delay.iteration = 1;
  delay.seconds = 2e-3;
  options.faults.delays.push_back(delay);
  fault::MessageFaultModel flaky;
  flaky.rank = 2;
  flaky.drop_probability = 0.4;
  flaky.retransmit_timeout_s = 5e-5;
  flaky.max_retries = 3;
  options.faults.message_faults.push_back(flaky);

  const SimKrakResult reference = f.run(16, options);
  EXPECT_GT(reference.fault_stats.injections, 0);
  for (std::int32_t threads : {2, 8}) {
    SimKrakOptions parallel = options;
    parallel.sim_threads = threads;
    expect_identical(reference, f.run(16, parallel));
  }
}

TEST(SimKrakParallel, HangingFaultPlanFailuresIdenticalAcrossThreadCounts) {
  // A plan that drops every message from one rank with no retries: the
  // peers waiting on it hang, the plan-armed watchdog converts them to
  // structured failures, and those must propagate out of worker shards
  // in the same canonical order as the oracle's.
  const Fixture f;
  SimKrakOptions options;
  options.iterations = 1;
  options.enable_noise = false;
  fault::MessageFaultModel mute;
  mute.rank = 1;
  mute.drop_probability = 0.999999;  // effectively always dropped
  mute.max_retries = 0;
  options.faults.message_faults.push_back(mute);
  options.faults.max_sim_seconds = 5.0;

  const SimKrakResult reference = f.run(8, options);
  ASSERT_TRUE(reference.failed());
  for (std::int32_t threads : {2, 8}) {
    SimKrakOptions parallel = options;
    parallel.sim_threads = threads;
    expect_identical(reference, f.run(8, parallel));
  }
}

TEST(SimKrakParallel, NicContentionIdenticalAcrossThreadCounts) {
  // Shards align to NIC node boundaries, so adapter-availability state
  // is shard-local and the engine runs genuinely parallel — no oracle
  // fallback — while replaying the oracle bit-exactly.
  const Fixture f;
  SimKrakOptions options;
  options.iterations = 2;
  options.nic_contention = true;
  const SimKrakResult reference = f.run(16, options);
  for (std::int32_t threads : {2, 8}) {
    SimKrakOptions parallel = options;
    parallel.sim_threads = threads;
    expect_identical(reference, f.run(16, parallel));
  }
}

TEST(SimKrakParallel, NicWithHierarchicalNetworkIdenticalAcrossThreadCounts) {
  // The full production stack at once: two-level message costs,
  // shared-NIC injection serialization, and noise. The shard unit is
  // the lcm of the placement's and the NIC's node widths.
  const Fixture f;
  SimKrakOptions options;
  options.iterations = 2;
  options.hierarchical_network = true;
  options.nic_contention = true;
  const SimKrakResult reference = f.run(16, options);
  for (std::int32_t threads : {2, 8}) {
    SimKrakOptions parallel = options;
    parallel.sim_threads = threads;
    expect_identical(reference, f.run(16, parallel));
  }
}

}  // namespace
}  // namespace krak::simapp
