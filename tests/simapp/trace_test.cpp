#include "simapp/trace.hpp"

#include <gtest/gtest.h>

#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "partition/partition.hpp"
#include "simapp/simkrak.hpp"

namespace krak::simapp {
namespace {

partition::PartitionStats small_stats(std::int32_t pes) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, pes, partition::PartitionMethod::kMultilevel, 1);
  return partition::PartitionStats(deck, part);
}

TEST(MessageInventory, EmptyForSingleProcessor) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part(1, std::vector<partition::PeId>(3200, 0));
  const MessageInventory inventory =
      compute_message_inventory(partition::PartitionStats(deck, part));
  EXPECT_EQ(inventory.total_messages(), 0);
  EXPECT_DOUBLE_EQ(inventory.total_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(inventory.mean_message_bytes(), 0.0);
}

TEST(MessageInventory, MatchesSimulatedTraffic) {
  // The analytic inventory must count exactly the messages the
  // simulator sends in one iteration.
  const auto& machine = network::make_es45_qsnet();
  const ComputationCostEngine engine;
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 12, partition::PartitionMethod::kMultilevel, 3);
  const SimKrak app(deck, part, machine, engine, {});
  const SimKrakResult result = app.run();
  const MessageInventory inventory = compute_message_inventory(app.stats());
  EXPECT_EQ(inventory.total_messages(),
            result.traffic.point_to_point_messages);
  EXPECT_NEAR(inventory.total_bytes(), result.traffic.point_to_point_bytes,
              1e-6);
}

TEST(MessageInventory, OnlyCommPhasesHaveTraffic) {
  const MessageInventory inventory = compute_message_inventory(small_stats(8));
  for (std::int32_t phase = 1; phase <= kPhaseCount; ++phase) {
    const auto& traffic =
        inventory.per_phase[static_cast<std::size_t>(phase - 1)];
    if (phase == 2 || phase == 4 || phase == 5 || phase == 7) {
      EXPECT_GT(traffic.messages, 0) << "phase " << phase;
    } else {
      EXPECT_EQ(traffic.messages, 0) << "phase " << phase;
    }
  }
}

TEST(MessageInventory, BoundaryExchangeDominatesMessageCount) {
  // Phase 2 sends at least 12 messages per directed boundary (one group
  // + final step), ghost phases send one each.
  const MessageInventory inventory = compute_message_inventory(small_stats(8));
  EXPECT_GT(inventory.per_phase[1].messages,
            inventory.per_phase[3].messages * 6);
}

TEST(MessageInventory, GhostPhasesShareCounts) {
  // Phases 4, 5, 7 send identical message counts (one per directed
  // boundary); phase 5/7 carry twice the bytes of phase 4.
  const MessageInventory inventory = compute_message_inventory(small_stats(8));
  EXPECT_EQ(inventory.per_phase[3].messages, inventory.per_phase[4].messages);
  EXPECT_EQ(inventory.per_phase[4].messages, inventory.per_phase[6].messages);
  EXPECT_NEAR(inventory.per_phase[4].bytes, 2.0 * inventory.per_phase[3].bytes,
              1e-9);
  EXPECT_NEAR(inventory.per_phase[6].bytes, inventory.per_phase[4].bytes,
              1e-9);
}

TEST(MessageInventory, FractionAtMostIsMonotoneCdf) {
  const MessageInventory inventory = compute_message_inventory(small_stats(16));
  double previous = 0.0;
  for (double bytes : {0.0, 12.0, 48.0, 120.0, 480.0, 1e5}) {
    const double fraction = inventory.fraction_at_most(bytes);
    EXPECT_GE(fraction, previous);
    EXPECT_LE(fraction, 1.0);
    previous = fraction;
  }
  EXPECT_DOUBLE_EQ(inventory.fraction_at_most(1e12), 1.0);
}

TEST(MessageInventory, MoreProcessorsMeansSmallerMessages) {
  // Strong scaling: boundaries shrink, so the mean message size drops.
  const MessageInventory at8 = compute_message_inventory(small_stats(8));
  const MessageInventory at64 = compute_message_inventory(small_stats(64));
  EXPECT_LT(at64.mean_message_bytes(), at8.mean_message_bytes());
  EXPECT_GT(at64.total_messages(), at8.total_messages());
}

}  // namespace
}  // namespace krak::simapp
