#include "simapp/simkrak.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "partition/partition.hpp"
#include "util/error.hpp"

namespace krak::simapp {
namespace {

struct Fixture {
  mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  network::MachineConfig machine = network::make_es45_qsnet();
  ComputationCostEngine engine;

  [[nodiscard]] partition::Partition partition(std::int32_t pes) const {
    return partition::partition_deck(
        deck, pes, partition::PartitionMethod::kMultilevel, 1);
  }
};

TEST(SimKrak, RunsToCompletionWithoutDeadlock) {
  const Fixture f;
  const SimKrak app(f.deck, f.partition(16), f.machine, f.engine, {});
  const SimKrakResult result = app.run();
  EXPECT_GT(result.time_per_iteration, 0.0);
  EXPECT_EQ(result.ranks, 16);
}

TEST(SimKrak, CollectiveTrafficMatchesTable4PerIteration) {
  const Fixture f;
  SimKrakOptions options;
  options.iterations = 2;
  const SimKrak app(f.deck, f.partition(8), f.machine, f.engine, options);
  const SimKrakResult result = app.run();
  // Table 4: per iteration 6 broadcasts (3 of 4B + 3 of 8B), 22
  // allreduces, 1 gather.
  EXPECT_EQ(result.traffic.broadcasts, 2 * 6);
  EXPECT_EQ(result.traffic.allreduces, 2 * 22);
  EXPECT_EQ(result.traffic.gathers, 2 * 1);
}

TEST(SimKrak, PhaseTimesSumToIterationTime) {
  const Fixture f;
  const SimKrak app(f.deck, f.partition(16), f.machine, f.engine, {});
  const SimKrakResult result = app.run();
  const double phase_sum = std::accumulate(result.phase_times.begin(),
                                           result.phase_times.end(), 0.0);
  EXPECT_NEAR(phase_sum, result.time_per_iteration,
              1e-9 * result.time_per_iteration);
}

TEST(SimKrak, BreakdownTotalsAreConsistent) {
  const Fixture f;
  const SimKrak app(f.deck, f.partition(8), f.machine, f.engine, {});
  const SimKrakResult result = app.run();

  // Per-rank decompositions exist for every rank, sum to the rank's
  // finish time (bounded by the makespan), and their sum is the totals.
  ASSERT_EQ(result.rank_breakdown.size(), 8u);
  sim::RankTimeBreakdown expected;
  for (const sim::RankTimeBreakdown& rank : result.rank_breakdown) {
    EXPECT_GT(rank.total_seconds(), 0.0);
    EXPECT_LE(rank.total_seconds(), result.total_time * (1.0 + 1e-9));
    expected.compute += rank.compute;
    expected.send_overhead += rank.send_overhead;
    expected.recv_overhead += rank.recv_overhead;
    expected.send_wait += rank.send_wait;
    expected.recv_wait += rank.recv_wait;
    expected.collective_wait += rank.collective_wait;
    expected.collective_cost += rank.collective_cost;
  }
  EXPECT_DOUBLE_EQ(result.totals.total_seconds(), expected.total_seconds());
  EXPECT_DOUBLE_EQ(result.totals.compute, expected.compute);
  EXPECT_DOUBLE_EQ(result.totals.collective_cost, expected.collective_cost);

  // The Krak iteration computes, exchanges boundaries, and synchronizes
  // on collectives every phase — all three phase buckets must be live.
  EXPECT_GT(result.totals.compute, 0.0);
  EXPECT_GT(result.totals.p2p_seconds(), 0.0);
  EXPECT_GT(result.totals.collective_seconds(), 0.0);
  EXPECT_GT(result.max_queue_depth, 0u);
}

TEST(SimKrak, DeterministicForFixedSeed) {
  const Fixture f;
  const partition::Partition part = f.partition(8);
  SimKrakOptions options;
  options.noise_seed = 77;
  const SimKrak a(f.deck, part, f.machine, f.engine, options);
  const SimKrak b(f.deck, part, f.machine, f.engine, options);
  EXPECT_DOUBLE_EQ(a.run().time_per_iteration, b.run().time_per_iteration);
}

TEST(SimKrak, DifferentSeedsJitterWithinNoiseBand) {
  const Fixture f;
  const partition::Partition part = f.partition(8);
  SimKrakOptions a_options;
  a_options.noise_seed = 1;
  SimKrakOptions b_options;
  b_options.noise_seed = 2;
  const double a =
      SimKrak(f.deck, part, f.machine, f.engine, a_options).run().time_per_iteration;
  const double b =
      SimKrak(f.deck, part, f.machine, f.engine, b_options).run().time_per_iteration;
  EXPECT_NE(a, b);
  EXPECT_NEAR(a / b, 1.0, 0.1);
}

TEST(SimKrak, NoiseDisabledGivesGroundTruthComputation) {
  const Fixture f;
  const partition::Partition part = f.partition(4);
  SimKrakOptions options;
  options.enable_noise = false;
  const SimKrak app(f.deck, part, f.machine, f.engine, options);
  const SimKrakResult with_a = app.run();
  const SimKrakResult with_b = app.run();
  EXPECT_DOUBLE_EQ(with_a.time_per_iteration, with_b.time_per_iteration);
}

TEST(SimKrak, SingleProcessorHasNoPointToPointTraffic) {
  const Fixture f;
  const partition::Partition part(1, std::vector<partition::PeId>(3200, 0));
  const SimKrak app(f.deck, part, f.machine, f.engine, {});
  const SimKrakResult result = app.run();
  EXPECT_EQ(result.traffic.point_to_point_messages, 0);
  EXPECT_GT(result.time_per_iteration, 0.0);
}

TEST(SimKrak, StrongScalingReducesIterationTime) {
  const Fixture f;
  const mesh::InputDeck medium = mesh::make_standard_deck(mesh::DeckSize::kMedium);
  double previous = 1e9;
  for (std::int32_t pes : {8, 32, 128}) {
    const double t = simulate_iteration_time(medium, pes, f.machine, f.engine);
    EXPECT_LT(t, previous) << "pes " << pes;
    previous = t;
  }
}

TEST(SimKrak, MoreIterationsScaleTotalTime) {
  const Fixture f;
  const partition::Partition part = f.partition(8);
  SimKrakOptions one;
  one.iterations = 1;
  SimKrakOptions three;
  three.iterations = 3;
  const double t1 = SimKrak(f.deck, part, f.machine, f.engine, one).run().total_time;
  const double t3 =
      SimKrak(f.deck, part, f.machine, f.engine, three).run().total_time;
  EXPECT_NEAR(t3 / t1, 3.0, 0.1);
}

TEST(SimKrak, FasterMachineRunsFaster) {
  const Fixture f;
  const partition::Partition part = f.partition(16);
  const double base =
      SimKrak(f.deck, part, f.machine, f.engine, {}).run().time_per_iteration;
  const network::MachineConfig upgrade = network::make_hypothetical_upgrade();
  const double fast =
      SimKrak(f.deck, part, upgrade, f.engine, {}).run().time_per_iteration;
  EXPECT_LT(fast, base);
  EXPECT_GT(fast, base / 3.0);  // bounded by the 2x compute / 2x net gains
}

TEST(SimKrak, BoundaryExchangeMessageCountMatchesStats) {
  // Phase 2 sends 6 messages per material group present on a boundary
  // plus 6 for the final step, in each direction; phases 4, 5, 7 add one
  // message per direction per boundary each.
  const Fixture f;
  const partition::Partition part = f.partition(4);
  const SimKrak app(f.deck, part, f.machine, f.engine, {});
  const SimKrakResult result = app.run();

  std::int64_t expected = 0;
  for (const partition::SubdomainInfo& sub : app.stats().subdomains()) {
    for (const partition::NeighborBoundary& boundary : sub.neighbors) {
      std::int64_t steps = 1;  // final all-materials step
      for (std::int64_t faces : boundary.faces_per_group) {
        if (faces > 0) ++steps;
      }
      expected += steps * kBoundaryMessagesPerStep;  // phase 2 sends
      expected += 3;                                 // ghost updates 4, 5, 7
    }
  }
  EXPECT_EQ(result.traffic.point_to_point_messages, expected);
}

TEST(SimKrak, RejectsBadOptions) {
  const Fixture f;
  const partition::Partition part = f.partition(4);
  SimKrakOptions options;
  options.iterations = 0;
  EXPECT_THROW(SimKrak(f.deck, part, f.machine, f.engine, options),
               util::InvalidArgument);
}

TEST(SimKrak, RejectsPartitionLargerThanMachine) {
  const Fixture f;
  network::MachineConfig tiny = f.machine;
  tiny.nodes = 1;
  tiny.pes_per_node = 2;
  const partition::Partition part = f.partition(4);
  EXPECT_THROW(SimKrak(f.deck, part, tiny, f.engine, {}),
               util::InvalidArgument);
}

}  // namespace
}  // namespace krak::simapp
