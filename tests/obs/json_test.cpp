#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "util/error.hpp"

namespace krak::obs {
namespace {

TEST(Json, DefaultIsNull) {
  Json value;
  EXPECT_TRUE(value.is_null());
  EXPECT_EQ(value.dump(0), "null");
}

TEST(Json, ScalarConstructionAndAccess) {
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_TRUE(Json(1.5).is_number());
  EXPECT_DOUBLE_EQ(Json(1.5).as_double(), 1.5);
  EXPECT_DOUBLE_EQ(Json(7).as_double(), 7.0);
  EXPECT_EQ(Json("text").as_string(), "text");
}

TEST(Json, KindMismatchThrows) {
  EXPECT_THROW((void)Json(1.0).as_string(), util::InvalidArgument);
  EXPECT_THROW((void)Json("x").as_double(), util::InvalidArgument);
  EXPECT_THROW((void)Json().as_array(), util::InvalidArgument);
  EXPECT_THROW((void)Json(true).as_object(), util::InvalidArgument);
}

TEST(Json, SubscriptBuildsNestedObjects) {
  Json root;
  root["outer"]["inner"] = 3;
  ASSERT_TRUE(root.is_object());
  const Json* outer = root.find("outer");
  ASSERT_NE(outer, nullptr);
  const Json* inner = outer->find("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_DOUBLE_EQ(inner->as_double(), 3.0);
  EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(Json, PushBackBuildsArrays) {
  Json list;
  list.push_back(1);
  list.push_back("two");
  ASSERT_TRUE(list.is_array());
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.as_array()[1].as_string(), "two");
}

TEST(Json, ObjectKeysAreSortedInDump) {
  Json object = Json::object();
  object["zebra"] = 1;
  object["alpha"] = 2;
  object["mid"] = 3;
  EXPECT_EQ(object.dump(0), R"({"alpha":2,"mid":3,"zebra":1})");
}

TEST(Json, CompactAndPrettyDump) {
  Json doc = Json::object();
  doc["list"].push_back(1);
  doc["list"].push_back(2);
  doc["name"] = "krak";
  EXPECT_EQ(doc.dump(0), R"({"list":[1,2],"name":"krak"})");
  EXPECT_EQ(doc.dump(2),
            "{\n  \"list\": [\n    1,\n    2\n  ],\n  \"name\": \"krak\"\n}");
}

TEST(Json, NumbersRoundTripShortest) {
  EXPECT_EQ(Json(0.1).dump(0), "0.1");
  EXPECT_EQ(Json(42).dump(0), "42");
  EXPECT_EQ(Json(-3.25).dump(0), "-3.25");
}

TEST(Json, NonFiniteNumbersAreRejectedAtDump) {
  EXPECT_THROW((void)Json(std::numeric_limits<double>::infinity()).dump(0),
               util::KrakError);
  EXPECT_THROW((void)Json(std::nan("")).dump(0), util::KrakError);
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(json_escape("plain"), R"("plain")");
  EXPECT_EQ(json_escape("a\"b\\c"), R"("a\"b\\c")");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), R"("line\nbreak\ttab")");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\"\\u0001\"");
}

TEST(Json, ParseRoundTripsDump) {
  Json doc = Json::object();
  doc["flag"] = true;
  doc["nothing"] = Json();
  doc["pi"] = 3.14159;
  doc["text"] = "quote \" and \\ slash";
  doc["nested"]["values"].push_back(-1);
  doc["nested"]["values"].push_back(2.5);

  const Json reparsed = Json::parse(doc.dump(2));
  EXPECT_EQ(reparsed, doc);
  EXPECT_EQ(reparsed.dump(2), doc.dump(2));
}

TEST(Json, ParseAcceptsAllScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").as_double(), -1250.0);
  EXPECT_EQ(Json::parse(R"("aAb")").as_string(), "aAb");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse(""), util::KrakError);
  EXPECT_THROW((void)Json::parse("{"), util::KrakError);
  EXPECT_THROW((void)Json::parse("[1,]"), util::KrakError);
  EXPECT_THROW((void)Json::parse("{\"a\":1,}"), util::KrakError);
  EXPECT_THROW((void)Json::parse("\"unterminated"), util::KrakError);
  EXPECT_THROW((void)Json::parse("nulL"), util::KrakError);
  EXPECT_THROW((void)Json::parse("1 2"), util::KrakError);  // trailing garbage
}

TEST(Json, ParseErrorNamesByteOffset) {
  try {
    (void)Json::parse("[1, x]");
    FAIL() << "expected KrakError";
  } catch (const util::KrakError& error) {
    EXPECT_NE(std::string(error.what()).find("byte"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace krak::obs
