#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace krak::obs {
namespace {

Snapshot example_snapshot() {
  Snapshot snapshot;
  snapshot["sim.events"] = {MetricValue::Kind::kCounter, 120, 0.0};
  snapshot["sim.max_queue_depth"] = {MetricValue::Kind::kGauge, 0, 7.0};
  snapshot["campaign.run"] = {MetricValue::Kind::kTimer, 4, 0.5};
  return snapshot;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Byte-exact golden rendering: object keys are sorted and numbers use
/// shortest-round-trip formatting, so this string is stable across
/// platforms. A change here is a report-format change and needs a note
/// in docs/OBSERVABILITY.md.
constexpr const char* kGolden = R"({
  "campaign.run": {
    "count": 4,
    "kind": "timer",
    "total_seconds": 0.5
  },
  "sim.events": {
    "count": 120,
    "kind": "counter"
  },
  "sim.max_queue_depth": {
    "kind": "gauge",
    "value": 7
  }
})";

TEST(Report, SnapshotToJsonMatchesGolden) {
  EXPECT_EQ(snapshot_to_json(example_snapshot()).dump(2), kGolden);
}

TEST(Report, WriteJsonReportRoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "krak_obs_report_test.json")
          .string();
  write_json_report(example_snapshot(), path);
  EXPECT_EQ(read_file(path), std::string(kGolden) + "\n");
  std::remove(path.c_str());
}

TEST(Report, WriteJsonReportThrowsOnUnwritablePath) {
  EXPECT_THROW(
      write_json_report(example_snapshot(), "/nonexistent-dir/report.json"),
      util::KrakError);
}

TEST(Report, CsvReportListsEveryMetric) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "krak_obs_report_test.csv")
          .string();
  write_csv_report(example_snapshot(), path);
  const std::string csv = read_file(path);
  EXPECT_NE(csv.find("name,kind,count,value"), std::string::npos);
  EXPECT_NE(csv.find("sim.events,counter,120"), std::string::npos);
  EXPECT_NE(csv.find("campaign.run,timer,4"), std::string::npos);
  EXPECT_NE(csv.find("sim.max_queue_depth,gauge"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace krak::obs
