#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/error.hpp"

namespace krak::obs {
namespace {

/// Restores the global instrumentation switch, so tests that flip it
/// cannot leak a disabled state into the rest of the binary.
class EnabledGuard {
 public:
  EnabledGuard() : saved_(enabled()) {}
  ~EnabledGuard() { set_enabled(saved_); }
  EnabledGuard(const EnabledGuard&) = delete;
  EnabledGuard& operator=(const EnabledGuard&) = delete;

 private:
  bool saved_;
};

TEST(Counter, AccumulatesAndResets) {
  EnabledGuard guard;
  set_enabled(true);
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42);
  counter.reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(Counter, DisabledAddIsANoOp) {
  EnabledGuard guard;
  Counter counter;
  set_enabled(false);
  counter.add(7);
  EXPECT_EQ(counter.value(), 0);
  set_enabled(true);
  counter.add(7);
  EXPECT_EQ(counter.value(), 7);
}

TEST(Gauge, LastWriteWins) {
  EnabledGuard guard;
  set_enabled(true);
  Gauge gauge;
  gauge.set(1.5);
  gauge.set(-2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), -2.5);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(Timer, AccumulatesTotalAndCount) {
  EnabledGuard guard;
  set_enabled(true);
  Timer timer;
  timer.record(0.25);
  timer.record(0.5);
  EXPECT_DOUBLE_EQ(timer.total_seconds(), 0.75);
  EXPECT_EQ(timer.count(), 2);
}

TEST(Timer, ConcurrentRecordsAllLand) {
  EnabledGuard guard;
  set_enabled(true);
  Timer timer;
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&timer] {
      for (int i = 0; i < kRecordsPerThread; ++i) timer.record(0.001);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(timer.count(), kThreads * kRecordsPerThread);
  EXPECT_NEAR(timer.total_seconds(), kThreads * kRecordsPerThread * 0.001,
              1e-9);
}

TEST(ScopedTimer, RecordsOneIntervalOnDestruction) {
  EnabledGuard guard;
  set_enabled(true);
  Timer timer;
  {
    ScopedTimer scope(timer);
  }
  EXPECT_EQ(timer.count(), 1);
  EXPECT_GE(timer.total_seconds(), 0.0);
}

TEST(ScopedTimer, DisabledScopeRecordsNothing) {
  EnabledGuard guard;
  Timer timer;
  set_enabled(false);
  {
    ScopedTimer scope(timer);
  }
  EXPECT_EQ(timer.count(), 0);
  EXPECT_DOUBLE_EQ(timer.total_seconds(), 0.0);
}

TEST(Registry, ReturnsStableReferences) {
  Registry registry;
  Counter& first = registry.counter("events");
  first.add(3);
  Counter& second = registry.counter("events");
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second.value(), 3);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, KindCollisionThrows) {
  Registry registry;
  (void)registry.counter("metric");
  EXPECT_THROW((void)registry.gauge("metric"), util::InvalidArgument);
  EXPECT_THROW((void)registry.timer("metric"), util::InvalidArgument);
}

TEST(Registry, SnapshotCarriesEveryKind) {
  EnabledGuard guard;
  set_enabled(true);
  Registry registry;
  registry.counter("a.count").add(5);
  registry.gauge("b.depth").set(3.5);
  registry.timer("c.seconds").record(0.125);

  const Snapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);

  const MetricValue& counter = snapshot.at("a.count");
  EXPECT_EQ(counter.kind, MetricValue::Kind::kCounter);
  EXPECT_EQ(counter.count, 5);

  const MetricValue& gauge = snapshot.at("b.depth");
  EXPECT_EQ(gauge.kind, MetricValue::Kind::kGauge);
  EXPECT_DOUBLE_EQ(gauge.value, 3.5);

  const MetricValue& timer = snapshot.at("c.seconds");
  EXPECT_EQ(timer.kind, MetricValue::Kind::kTimer);
  EXPECT_EQ(timer.count, 1);
  EXPECT_DOUBLE_EQ(timer.value, 0.125);
}

TEST(Registry, ResetZeroesValuesButKeepsRegistrations) {
  EnabledGuard guard;
  set_enabled(true);
  Registry registry;
  Counter& counter = registry.counter("n");
  counter.add(9);
  registry.reset();
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(counter.value(), 0);
  counter.add(1);
  EXPECT_EQ(registry.snapshot().at("n").count, 1);
}

TEST(GlobalRegistry, IsASingleton) {
  EXPECT_EQ(&global_registry(), &global_registry());
}

TEST(MetricKindName, NamesAllKinds) {
  EXPECT_EQ(metric_kind_name(MetricValue::Kind::kCounter), "counter");
  EXPECT_EQ(metric_kind_name(MetricValue::Kind::kGauge), "gauge");
  EXPECT_EQ(metric_kind_name(MetricValue::Kind::kTimer), "timer");
}

}  // namespace
}  // namespace krak::obs
