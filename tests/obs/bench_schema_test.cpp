#include "obs/bench_schema.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace krak::obs {
namespace {

/// Hand-built minimal conforming document (independent of the emitter
/// in core/bench_report.cpp, so schema and emitter are tested against
/// each other rather than against themselves).
Json minimal_valid_report() {
  Json report = Json::object();
  report["schema"] = std::string(kBenchSchemaId);
  report["name"] = "unit";
  report["quick"] = true;

  Json& env = report["environment"];
  env["git_sha"] = "deadbeef";
  env["build_type"] = "Release";
  env["compiler"] = "gcc 13";
  env["hardware_concurrency"] = 8;

  Json run = Json::object();
  run["problem"] = "small 80x40";
  run["pes"] = 16;
  run["measured_s"] = 0.5;
  run["predicted_s"] = 0.45;
  run["error"] = 0.1;
  run["wall_seconds"] = 0.01;

  Json campaign = Json::object();
  campaign["name"] = "table5";
  campaign["wall_seconds"] = 0.02;
  campaign["threads"] = 4;
  campaign["thread_utilization"] = 0.9;
  campaign["worst_abs_error"] = 0.1;
  campaign["mean_abs_error"] = 0.1;
  campaign["runs"].push_back(std::move(run));
  report["campaigns"].push_back(std::move(campaign));

  Json replay = Json::object();
  replay["name"] = "small_8pe";
  replay["ranks"] = 8;
  replay["makespan_s"] = 0.03;
  replay["time_per_iteration_s"] = 0.015;
  replay["events"] = 1234;
  replay["max_queue_depth"] = 9;
  Json& phases = replay["phases"];
  phases["compute_s"] = 0.1;
  phases["p2p_s"] = 0.01;
  phases["collective_s"] = 0.05;
  Json& blocked = replay["blocked"];
  blocked["send_wait_s"] = 0.0;
  blocked["recv_wait_s"] = 0.004;
  blocked["collective_wait_s"] = 0.03;
  blocked["collective_cost_s"] = 0.02;
  Json& traffic = replay["traffic"];
  traffic["p2p_messages"] = 640;
  traffic["p2p_bytes"] = 1.5e6;
  traffic["allreduces"] = 48;
  traffic["broadcasts"] = 16;
  traffic["gathers"] = 8;
  report["replays"].push_back(std::move(replay));

  Json& metrics = report["metrics"];
  Json counter = Json::object();
  counter["kind"] = "counter";
  counter["count"] = 3;
  metrics["sim.runs"] = std::move(counter);
  Json timer = Json::object();
  timer["kind"] = "timer";
  timer["count"] = 2;
  timer["total_seconds"] = 0.5;
  metrics["campaign.run"] = std::move(timer);
  return report;
}

/// Mutable access to the first element of an array-valued Json. The
/// public API only exposes const element access (reports are built by
/// push_back and never edited); tests mutate in place to corrupt
/// documents.
Json& first_element(Json& array_owner) {
  return const_cast<Json&>(array_owner.as_array().front());
}

/// True when some violation message contains `needle`.
bool mentions(const std::vector<std::string>& violations,
              const std::string& needle) {
  for (const std::string& violation : violations) {
    if (violation.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(BenchSchema, MinimalReportIsValid) {
  const std::vector<std::string> violations =
      validate_bench_report(minimal_valid_report());
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
}

TEST(BenchSchema, NonObjectTopLevelFails) {
  EXPECT_TRUE(mentions(validate_bench_report(Json(1.0)),
                       "top level must be an object"));
}

TEST(BenchSchema, WrongSchemaIdIsReported) {
  Json report = minimal_valid_report();
  report["schema"] = "krak-bench-v999";
  EXPECT_TRUE(mentions(validate_bench_report(report), "$.schema"));
}

TEST(BenchSchema, MissingEnvironmentKeyIsReported) {
  Json report = minimal_valid_report();
  Json env = Json::object();
  env["git_sha"] = "deadbeef";
  env["build_type"] = "Release";
  env["compiler"] = "gcc 13";  // hardware_concurrency omitted
  report["environment"] = std::move(env);
  EXPECT_TRUE(mentions(validate_bench_report(report), "hardware_concurrency"));
}

TEST(BenchSchema, EmptyCampaignsArrayIsReported) {
  Json report = minimal_valid_report();
  report["campaigns"] = Json::array();
  EXPECT_TRUE(mentions(validate_bench_report(report), "$.campaigns"));
}

TEST(BenchSchema, UtilizationAboveOneIsOutOfRange) {
  Json report = minimal_valid_report();
  first_element(report["campaigns"])["thread_utilization"] = 1.5;
  EXPECT_TRUE(
      mentions(validate_bench_report(report), "thread_utilization"));
}

TEST(BenchSchema, NegativeBlockedTimeIsOutOfRange) {
  Json report = minimal_valid_report();
  first_element(report["replays"])["blocked"]["recv_wait_s"] = -0.5;
  EXPECT_TRUE(mentions(validate_bench_report(report), "recv_wait_s"));
}

TEST(BenchSchema, UnknownMetricKindIsReported) {
  Json report = minimal_valid_report();
  Json bad = Json::object();
  bad["kind"] = "histogram";
  report["metrics"]["weird"] = std::move(bad);
  EXPECT_TRUE(mentions(validate_bench_report(report), "unknown metric kind"));
}

TEST(BenchSchema, ViolationPathsNameTheOffendingElement) {
  Json report = minimal_valid_report();
  Json& campaign = first_element(report["campaigns"]);
  first_element(campaign["runs"])["pes"] = 0;  // below minimum of 1
  EXPECT_TRUE(mentions(validate_bench_report(report),
                       "$.campaigns[0].runs[0].pes"));
}

/// A well-formed campaign "failures" entry (graceful degradation).
Json campaign_failure_entry() {
  Json failure = Json::object();
  failure["run_index"] = 1;
  failure["scenario"] = "small/16pe/general-homogeneous";
  failure["error"] = "simulation deadlock: rank 0 blocked at op 3";
  Json cause = Json::object();
  cause["kind"] = "lost-message";
  cause["rank"] = 0;
  cause["op_index"] = 3;
  cause["detail"] = "waiting for a message lost by the fault plan";
  failure["sim_failure"] = std::move(cause);
  return failure;
}

TEST(BenchSchema, CampaignFailuresSectionValidates) {
  Json report = minimal_valid_report();
  first_element(report["campaigns"])["failures"].push_back(
      campaign_failure_entry());
  const std::vector<std::string> violations =
      validate_bench_report(report);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
}

TEST(BenchSchema, AllScenariosFailedAllowsZeroRuns) {
  // A campaign where every scenario failed has no measured runs; that is
  // legal only because the failures section explains the gap.
  Json report = minimal_valid_report();
  Json& campaign = first_element(report["campaigns"]);
  campaign["runs"] = Json::array();
  campaign["failures"].push_back(campaign_failure_entry());
  EXPECT_TRUE(validate_bench_report(report).empty());
}

TEST(BenchSchema, ZeroRunsWithoutFailuresIsViolation) {
  Json report = minimal_valid_report();
  first_element(report["campaigns"])["runs"] = Json::array();
  EXPECT_TRUE(mentions(validate_bench_report(report), "runs"));
}

TEST(BenchSchema, FailureMissingScenarioIsReported) {
  Json report = minimal_valid_report();
  Json failure = Json::object();
  failure["run_index"] = 1;  // scenario and error omitted
  first_element(report["campaigns"])["failures"].push_back(std::move(failure));
  EXPECT_TRUE(mentions(validate_bench_report(report), "scenario"));
}

TEST(BenchSchema, NonObjectSimFailureIsReported) {
  Json report = minimal_valid_report();
  Json failure = campaign_failure_entry();
  failure["sim_failure"] = "deadlock";  // must be a structured object
  first_element(report["campaigns"])["failures"].push_back(std::move(failure));
  EXPECT_TRUE(mentions(validate_bench_report(report), "sim_failure"));
}

TEST(BenchSchema, ReplayFaultSectionValidates) {
  Json report = minimal_valid_report();
  Json& fault = first_element(report["replays"])["fault"];
  fault["injections"] = 12;
  fault["retransmits"] = 3;
  fault["messages_lost"] = 1;
  fault["fault_delay_s"] = 0.05;
  fault["recovery_s"] = 0.0;
  fault["failures"] = Json::array();
  const std::vector<std::string> violations =
      validate_bench_report(report);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
}

TEST(BenchSchema, ParallelScalingSectionValidates) {
  Json report = minimal_valid_report();
  Json& parallel = first_element(report["replays"])["parallel"];
  parallel["threads"] = 8;
  parallel["serial_wall_s"] = 2.0;
  parallel["parallel_wall_s"] = 0.5;
  parallel["speedup"] = 4.0;
  const std::vector<std::string> violations =
      validate_bench_report(report);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
}

TEST(BenchSchema, ParallelScalingAmdahlFieldsValidate) {
  Json report = minimal_valid_report();
  Json& parallel = first_element(report["replays"])["parallel"];
  parallel["threads"] = 8;
  parallel["serial_wall_s"] = 2.0;
  parallel["parallel_wall_s"] = 0.5;
  parallel["speedup"] = 4.0;
  parallel["speedup_vs_oracle"] = 4.0;
  parallel["coordinator_serial_fraction"] = 0.07;
  const std::vector<std::string> violations =
      validate_bench_report(report);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
}

TEST(BenchSchema, CoordinatorSerialFractionAboveOneIsOutOfRange) {
  Json report = minimal_valid_report();
  Json& parallel = first_element(report["replays"])["parallel"];
  parallel["threads"] = 8;
  parallel["serial_wall_s"] = 2.0;
  parallel["parallel_wall_s"] = 0.5;
  parallel["speedup"] = 4.0;
  // A fraction of the parallel wall can never exceed 1.
  parallel["coordinator_serial_fraction"] = 1.5;
  EXPECT_TRUE(
      mentions(validate_bench_report(report), "coordinator_serial_fraction"));
}

TEST(BenchSchema, ParallelScalingZeroThreadsIsOutOfRange) {
  Json report = minimal_valid_report();
  Json& parallel = first_element(report["replays"])["parallel"];
  parallel["threads"] = 0;  // the oracle is threads = 1, never 0
  parallel["serial_wall_s"] = 2.0;
  parallel["parallel_wall_s"] = 0.5;
  parallel["speedup"] = 4.0;
  EXPECT_TRUE(mentions(validate_bench_report(report), "threads"));
}

TEST(BenchSchema, ParallelScalingMissingWallIsReported) {
  Json report = minimal_valid_report();
  Json& parallel = first_element(report["replays"])["parallel"];
  parallel["threads"] = 2;
  parallel["serial_wall_s"] = 2.0;
  parallel["speedup"] = 1.0;  // parallel_wall_s omitted
  EXPECT_TRUE(mentions(validate_bench_report(report), "parallel_wall_s"));
}

TEST(BenchSchema, NegativeFaultDelayIsOutOfRange) {
  Json report = minimal_valid_report();
  Json& fault = first_element(report["replays"])["fault"];
  fault["injections"] = 1;
  fault["retransmits"] = 0;
  fault["messages_lost"] = 0;
  fault["fault_delay_s"] = -0.5;
  fault["recovery_s"] = 0.0;
  fault["failures"] = Json::array();
  EXPECT_TRUE(mentions(validate_bench_report(report), "fault_delay_s"));
}

}  // namespace
}  // namespace krak::obs
