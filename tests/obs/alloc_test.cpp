// Smoke test for the obs disabled path: with instrumentation switched
// off, recording through already-registered metrics must not allocate.
// Global operator new/delete are replaced with counting forwards to
// malloc/free, so any heap traffic on the hot path shows up as a
// baseline delta.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "obs/metrics.hpp"

namespace {

std::atomic<std::int64_t> g_allocations{0};

std::int64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace

// gcc's -Wmismatched-new-delete pairs the malloc inside the replaced
// operator new with the free inside the replaced operator delete and
// flags the pair — but forwarding both to malloc/free is exactly the
// point of the replacement, so the match is correct by construction.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace krak::obs {
namespace {

TEST(ObsAllocation, DisabledRecordingPathIsAllocationFree) {
  // Register up front: registration legitimately allocates (map nodes,
  // metric storage); the claim under test is about recording.
  Registry registry;
  Counter& counter = registry.counter("alloc_test.count");
  Gauge& gauge = registry.gauge("alloc_test.depth");
  Timer& timer = registry.timer("alloc_test.seconds");

  const bool was_enabled = enabled();
  set_enabled(false);
  const std::int64_t baseline = allocation_count();
  for (int i = 0; i < 1000; ++i) {
    counter.add();
    gauge.set(static_cast<double>(i));
    timer.record(1e-6);
    ScopedTimer scope(timer);
  }
  EXPECT_EQ(allocation_count(), baseline);
  set_enabled(was_enabled);

  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(timer.count(), 0);
}

TEST(ObsAllocation, EnabledRecordingThroughRegisteredMetricsIsAllocationFree) {
  // Even with instrumentation on, recording is a few atomic operations;
  // only registration and snapshotting may touch the heap.
  Registry registry;
  Counter& counter = registry.counter("alloc_test.enabled_count");
  Timer& timer = registry.timer("alloc_test.enabled_seconds");

  const bool was_enabled = enabled();
  set_enabled(true);
  const std::int64_t baseline = allocation_count();
  for (int i = 0; i < 1000; ++i) {
    counter.add();
    timer.record(1e-6);
    ScopedTimer scope(timer);
  }
  EXPECT_EQ(allocation_count(), baseline);
  set_enabled(was_enabled);

  EXPECT_EQ(counter.value(), 1000);
  EXPECT_EQ(timer.count(), 2000);  // 1000 record() + 1000 ScopedTimer
}

}  // namespace
}  // namespace krak::obs
