#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "core/model.hpp"
#include "core/validation.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "partition/partition.hpp"
#include "simapp/simkrak.hpp"

namespace krak {
namespace {

/// Shared expensive setup: one calibrated model reused by every test in
/// this file (SetUpTestSuite runs once per binary).
class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new simapp::ComputationCostEngine();
    deck_ = new mesh::InputDeck(mesh::make_standard_deck(mesh::DeckSize::kMedium));
    const core::CostTable table =
        core::calibrate_from_input(*engine_, *deck_, {8, 64, 512, 4096});
    model_ = new core::KrakModel(table, network::make_es45_qsnet());
  }
  static void TearDownTestSuite() {
    delete model_;
    delete deck_;
    delete engine_;
    model_ = nullptr;
    deck_ = nullptr;
    engine_ = nullptr;
  }

  static simapp::ComputationCostEngine* engine_;
  static mesh::InputDeck* deck_;
  static core::KrakModel* model_;
};

simapp::ComputationCostEngine* EndToEndTest::engine_ = nullptr;
mesh::InputDeck* EndToEndTest::deck_ = nullptr;
core::KrakModel* EndToEndTest::model_ = nullptr;

TEST_F(EndToEndTest, GeneralHomogeneousWithinTenPercentAtScale) {
  // The paper's Table 6 regime: medium problem, large processor counts,
  // homogeneous general model. Our reproduction targets the same band
  // (single-digit percent errors).
  for (std::int32_t pes : {128, 256, 512}) {
    const core::ValidationPoint point = core::validate_general(
        *deck_, pes, *model_, core::GeneralModelMode::kHomogeneous, *engine_);
    EXPECT_LT(std::abs(point.error()), 0.10)
        << "pes=" << pes << " measured=" << point.measured
        << " predicted=" << point.predicted;
  }
}

TEST_F(EndToEndTest, MeshSpecificAccurateAwayFromKnee) {
  // Table 5's medium rows: mesh-specific errors below ~10% when
  // subgrids are far from the knee.
  for (std::int32_t pes : {16, 64}) {
    const core::ValidationPoint point =
        core::validate_mesh_specific(*deck_, pes, *model_, *engine_);
    EXPECT_LT(std::abs(point.error()), 0.10) << "pes=" << pes;
  }
}

TEST_F(EndToEndTest, PredictionWithoutSimulationIsFast) {
  // The whole point of the general model: predicting a configuration
  // must not require partitioning or simulating it. Smoke-check by
  // sweeping many configurations cheaply.
  double total = 0.0;
  for (std::int32_t pes = 1; pes <= 1024; pes *= 2) {
    total += model_
                 ->predict_general(819200, pes,
                                   core::GeneralModelMode::kHomogeneous)
                 .total();
  }
  EXPECT_GT(total, 0.0);
}

TEST_F(EndToEndTest, ModelTracksMachineUpgrade) {
  // A twice-as-fast machine must be predicted faster, by less than 2x
  // (communication latency does not halve compute-bound fractions
  // uniformly ... but both components halve here, so allow wide band).
  core::KrakModel upgraded(model_->cost_table(),
                           network::make_hypothetical_upgrade());
  const double base =
      model_->predict_general(204800, 256, core::GeneralModelMode::kHomogeneous)
          .total();
  const double fast =
      upgraded.predict_general(204800, 256, core::GeneralModelMode::kHomogeneous)
          .total();
  EXPECT_LT(fast, base);
  EXPECT_GT(fast, base / 2.5);
}

TEST_F(EndToEndTest, SimulatedSpeedupMatchesModelSpeedupDirection) {
  // Model-predicted strong-scaling speedup and SimKrak-measured speedup
  // agree within 15% on the medium problem between 64 and 256 PEs.
  const network::MachineConfig machine = network::make_es45_qsnet();
  const double measured64 =
      simapp::simulate_iteration_time(*deck_, 64, machine, *engine_);
  const double measured256 =
      simapp::simulate_iteration_time(*deck_, 256, machine, *engine_);
  const double predicted64 =
      model_->predict_general(204800, 64, core::GeneralModelMode::kHomogeneous)
          .total();
  const double predicted256 =
      model_->predict_general(204800, 256, core::GeneralModelMode::kHomogeneous)
          .total();
  const double measured_speedup = measured64 / measured256;
  const double predicted_speedup = predicted64 / predicted256;
  EXPECT_NEAR(predicted_speedup / measured_speedup, 1.0, 0.15);
}

TEST_F(EndToEndTest, CommunicationFractionGrowsWithScale) {
  // Strong scaling shrinks computation while collectives grow with
  // log(P): the communication fraction must increase monotonically.
  double previous_fraction = 0.0;
  for (std::int32_t pes : {16, 64, 256, 1024}) {
    const auto report = model_->predict_general(
        204800, pes, core::GeneralModelMode::kHomogeneous);
    const double fraction = report.communication() / report.total();
    EXPECT_GT(fraction, previous_fraction) << "pes=" << pes;
    previous_fraction = fraction;
  }
}

}  // namespace
}  // namespace krak
