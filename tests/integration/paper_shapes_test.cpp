#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "core/model.hpp"
#include "core/validation.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "simapp/simkrak.hpp"

namespace krak {
namespace {

/// Qualitative reproduction of the paper's headline findings. These are
/// the properties EXPERIMENTS.md reports; each test pins one *shape*
/// from the evaluation section (not the absolute numbers, which depend
/// on the authors' testbed).
class PaperShapesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new simapp::ComputationCostEngine();
    medium_ = new mesh::InputDeck(
        mesh::make_standard_deck(mesh::DeckSize::kMedium));
    small_ = new mesh::InputDeck(
        mesh::make_standard_deck(mesh::DeckSize::kSmall));
    const core::CostTable table =
        core::calibrate_from_input(*engine_, *medium_, {8, 64, 512, 4096});
    model_ = new core::KrakModel(table, network::make_es45_qsnet());
  }
  static void TearDownTestSuite() {
    delete model_;
    delete small_;
    delete medium_;
    delete engine_;
    model_ = nullptr;
    small_ = nullptr;
    medium_ = nullptr;
    engine_ = nullptr;
  }

  static simapp::ComputationCostEngine* engine_;
  static mesh::InputDeck* medium_;
  static mesh::InputDeck* small_;
  static core::KrakModel* model_;
};

simapp::ComputationCostEngine* PaperShapesTest::engine_ = nullptr;
mesh::InputDeck* PaperShapesTest::medium_ = nullptr;
mesh::InputDeck* PaperShapesTest::small_ = nullptr;
core::KrakModel* PaperShapesTest::model_ = nullptr;

TEST_F(PaperShapesTest, Table5SmallProblemErrsNearTheKnee) {
  // "In two cases, the predicted runtime was in error by more than 50%.
  // This is the case near the knee of the per-cell cost curve." Our
  // reproduction requires the small problem's worst mesh-specific error
  // to clearly exceed the medium problem's worst error.
  double worst_small = 0.0;
  double worst_medium = 0.0;
  for (std::int32_t pes : {16, 64, 128}) {
    worst_small =
        std::max(worst_small,
                 std::abs(core::validate_mesh_specific(*small_, pes, *model_,
                                                       *engine_)
                              .error()));
    worst_medium =
        std::max(worst_medium,
                 std::abs(core::validate_mesh_specific(*medium_, pes, *model_,
                                                       *engine_)
                              .error()));
  }
  EXPECT_GT(worst_small, 0.15);   // large errors near the knee
  EXPECT_LT(worst_medium, 0.10);  // "accurate to within 10%" elsewhere
  EXPECT_GT(worst_small, 1.5 * worst_medium);
}

TEST_F(PaperShapesTest, Table6HomogeneousAccurateAtLargeScale) {
  // "We have validated the general model ... on 512 processors, model
  // accuracy is within 3%" — we accept a slightly wider single-digit
  // band since the substrate differs.
  const core::ValidationPoint point = core::validate_general(
      *medium_, 512, *model_, core::GeneralModelMode::kHomogeneous, *engine_);
  EXPECT_LT(std::abs(point.error()), 0.08)
      << "measured=" << point.measured << " predicted=" << point.predicted;
}

TEST_F(PaperShapesTest, Figure5HeterogeneousOverpredictsAtScale) {
  // Section 5.2: "At large scale a heterogeneous material distribution
  // is less accurate ... leads to an over-prediction of runtime."
  const core::ValidationPoint het = core::validate_general(
      *medium_, 512, *model_, core::GeneralModelMode::kHeterogeneous,
      *engine_);
  EXPECT_LT(het.error(), -0.10);  // paper sign convention: over-prediction
}

TEST_F(PaperShapesTest, Figure5HeterogeneousGapGrowsWithScale) {
  const auto gap = [&](std::int32_t pes) {
    const double het =
        model_
            ->predict_general(204800, pes,
                              core::GeneralModelMode::kHeterogeneous)
            .total();
    const double homo =
        model_
            ->predict_general(204800, pes, core::GeneralModelMode::kHomogeneous)
            .total();
    return het / homo;
  };
  EXPECT_GT(gap(512), gap(64));
  EXPECT_GT(gap(512), 1.10);
}

TEST_F(PaperShapesTest, Figure5HomogeneousOverpredictsAtSmallScale) {
  // At one processor the subgrid holds the global material mix, so the
  // all-HE-gas homogeneous assumption over-charges (its curve sits above
  // the measured one at the left edge of Figure 5).
  const double measured = simapp::simulate_iteration_time(
      *medium_, 1, network::make_es45_qsnet(), *engine_);
  const double homo =
      model_->predict_general(204800, 1, core::GeneralModelMode::kHomogeneous)
          .total();
  const double het =
      model_
          ->predict_general(204800, 1, core::GeneralModelMode::kHeterogeneous)
          .total();
  EXPECT_GT(homo, measured);
  // And the heterogeneous flavor is the better fit at 1 PE.
  EXPECT_LT(std::abs(het - measured), std::abs(homo - measured));
}

TEST_F(PaperShapesTest, Figure3PerCellCurvesHaveKneeAndPlateau) {
  // The measured per-cell curves of Figure 3: steep on the left,
  // flat on the right, material separation in dependent phases.
  for (std::int32_t phase : {1, 2, 7}) {
    const double left = engine_->per_cell_cost(phase, mesh::Material::kHEGas, 2);
    const double mid =
        engine_->per_cell_cost(phase, mesh::Material::kHEGas, 1000);
    const double right =
        engine_->per_cell_cost(phase, mesh::Material::kHEGas, 1000000);
    EXPECT_GT(left / right, 20.0) << "phase " << phase;
    EXPECT_NEAR(mid / right, 1.0, 0.35) << "phase " << phase;
  }
}

TEST_F(PaperShapesTest, Figure2MaterialDependencePattern) {
  // Figure 2: some phases' times depend on the subgrid's material
  // (phase 14), others only on cell count (phase 10).
  constexpr std::int64_t n = 256;  // 65,536 cells on 256 PEs
  const double he14 =
      engine_->uniform_subgrid_time(14, mesh::Material::kHEGas, n);
  const double foam14 =
      engine_->uniform_subgrid_time(14, mesh::Material::kFoam, n);
  EXPECT_GT(he14 / foam14, 1.2);
  const double he10 =
      engine_->uniform_subgrid_time(10, mesh::Material::kHEGas, n);
  const double foam10 =
      engine_->uniform_subgrid_time(10, mesh::Material::kFoam, n);
  EXPECT_DOUBLE_EQ(he10, foam10);
}

TEST_F(PaperShapesTest, StrongScalingSaturatesForSmallProblem) {
  // The paper's small problem stops scaling between 64 and 128 PEs
  // (Table 5: 88 ms -> 28 ms with collective overheads growing); ours
  // must show clearly sub-linear scaling at that size.
  const network::MachineConfig machine = network::make_es45_qsnet();
  const double at16 = simapp::simulate_iteration_time(*small_, 16, machine, *engine_);
  const double at128 =
      simapp::simulate_iteration_time(*small_, 128, machine, *engine_);
  const double speedup = at16 / at128;
  EXPECT_GT(speedup, 1.0);
  EXPECT_LT(speedup, 4.0);  // far below the ideal 8x
}

}  // namespace
}  // namespace krak
