#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/calibration.hpp"
#include "core/model.hpp"
#include "network/machine.hpp"
#include "simapp/costmodel.hpp"

namespace krak {
namespace {

/// Shared calibrated model for the whole property suite.
const core::KrakModel& shared_model() {
  static const core::KrakModel* model = [] {
    const simapp::ComputationCostEngine engine;
    const mesh::InputDeck deck =
        mesh::make_standard_deck(mesh::DeckSize::kMedium);
    return new core::KrakModel(
        core::calibrate_from_input(engine, deck, {8, 64, 512, 4096}),
        network::make_es45_qsnet());
  }();
  return *model;
}

// --------------------------------------------------------------------
// Monotonicity in processor count.

class PeSweepTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t,
                                                 core::GeneralModelMode>> {};

TEST_P(PeSweepTest, ComputationNonIncreasingInPes) {
  const auto [cells, mode] = GetParam();
  double previous = 1e300;
  for (std::int32_t pes = 1; pes <= 1024; pes *= 2) {
    const double comp = shared_model().predict_general(cells, pes, mode)
                            .computation;
    EXPECT_LE(comp, previous * (1.0 + 1e-9))
        << "cells=" << cells << " pes=" << pes;
    previous = comp;
  }
}

TEST_P(PeSweepTest, CollectivesNonDecreasingInPes) {
  const auto [cells, mode] = GetParam();
  double previous = 0.0;
  for (std::int32_t pes = 1; pes <= 1024; pes *= 2) {
    const auto report = shared_model().predict_general(cells, pes, mode);
    const double collectives = report.broadcast + report.allreduce +
                               report.gather;
    EXPECT_GE(collectives, previous) << "pes=" << pes;
    previous = collectives;
  }
}

TEST_P(PeSweepTest, AllComponentsNonNegative) {
  const auto [cells, mode] = GetParam();
  for (std::int32_t pes : {1, 3, 17, 100, 511, 1024}) {
    const auto report = shared_model().predict_general(cells, pes, mode);
    EXPECT_GE(report.computation, 0.0);
    EXPECT_GE(report.boundary_exchange, 0.0);
    EXPECT_GE(report.ghost_updates, 0.0);
    EXPECT_GE(report.broadcast, 0.0);
    EXPECT_GE(report.allreduce, 0.0);
    EXPECT_GE(report.gather, 0.0);
    EXPECT_GT(report.total(), 0.0);
  }
}

TEST_P(PeSweepTest, PhaseComputationSumsToTotal) {
  const auto [cells, mode] = GetParam();
  for (std::int32_t pes : {1, 64, 1024}) {
    const auto report = shared_model().predict_general(cells, pes, mode);
    double sum = 0.0;
    for (double t : report.phase_computation) sum += t;
    EXPECT_NEAR(sum, report.computation, 1e-12 + 1e-9 * report.computation);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CellsAndModes, PeSweepTest,
    ::testing::Combine(
        ::testing::Values<std::int64_t>(3200, 204800, 819200),
        ::testing::Values(core::GeneralModelMode::kHomogeneous,
                          core::GeneralModelMode::kHeterogeneous)),
    [](const auto& info) {
      return "cells" + std::to_string(std::get<0>(info.param)) + "_" +
             std::string(core::general_model_mode_name(std::get<1>(info.param)));
    });

// --------------------------------------------------------------------
// Monotonicity in problem size.

class SizeSweepTest : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(SizeSweepTest, TotalNonDecreasingInCells) {
  const std::int32_t pes = GetParam();
  double previous = 0.0;
  for (std::int64_t cells = 51200; cells <= 3276800; cells *= 2) {
    const double total =
        shared_model()
            .predict_general(cells, pes, core::GeneralModelMode::kHomogeneous)
            .total();
    EXPECT_GE(total, previous) << "cells=" << cells;
    previous = total;
  }
}

TEST_P(SizeSweepTest, BoundaryExchangeGrowsWithCells) {
  // More cells per PE means longer subgrid edges, hence bigger
  // boundary-exchange messages.
  const std::int32_t pes = GetParam();
  if (pes < 2) GTEST_SKIP() << "no communication on one PE";
  const auto small =
      shared_model().predict_general(51200, pes,
                                     core::GeneralModelMode::kHomogeneous);
  const auto large =
      shared_model().predict_general(819200, pes,
                                     core::GeneralModelMode::kHomogeneous);
  EXPECT_GT(large.boundary_exchange, small.boundary_exchange);
  EXPECT_GT(large.ghost_updates, small.ghost_updates);
  // Collectives are size-independent (Table 4).
  EXPECT_DOUBLE_EQ(large.allreduce, small.allreduce);
}

INSTANTIATE_TEST_SUITE_P(Pes, SizeSweepTest,
                         ::testing::Values(1, 16, 128, 1024));

// --------------------------------------------------------------------
// Cross-flavor consistency.

TEST(ModelProperties, HeterogeneousCommunicationAtLeastHomogeneous) {
  // Per-material boundary-exchange steps can only add messages.
  for (std::int32_t pes : {4, 32, 256, 1024}) {
    const auto het = shared_model().predict_general(
        204800, pes, core::GeneralModelMode::kHeterogeneous);
    const auto homo = shared_model().predict_general(
        204800, pes, core::GeneralModelMode::kHomogeneous);
    EXPECT_GE(het.boundary_exchange, homo.boundary_exchange - 1e-15)
        << "pes=" << pes;
    // Ghost updates and collectives are identical across flavors.
    EXPECT_DOUBLE_EQ(het.ghost_updates, homo.ghost_updates);
    EXPECT_DOUBLE_EQ(het.allreduce, homo.allreduce);
  }
}

TEST(ModelProperties, MachineSpeedupNeverHurts) {
  const core::KrakModel upgraded(shared_model().cost_table(),
                                 network::make_hypothetical_upgrade());
  for (std::int32_t pes : {1, 16, 256, 1024}) {
    const double base =
        shared_model()
            .predict_general(204800, pes, core::GeneralModelMode::kHomogeneous)
            .total();
    const double fast =
        upgraded
            .predict_general(204800, pes, core::GeneralModelMode::kHomogeneous)
            .total();
    EXPECT_LT(fast, base) << "pes=" << pes;
  }
}

TEST(ModelProperties, MeshSpecificWithinBandOfGeneralAtScale) {
  // At scale the idealized general model and the real-partition model
  // must agree on computation within the partition imbalance plus the
  // homogeneous-max approximation (~10%).
  const simapp::ComputationCostEngine engine;
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kMedium);
  for (std::int32_t pes : {128, 512}) {
    const partition::Partition part = partition::partition_deck(
        deck, pes, partition::PartitionMethod::kMultilevel, 1);
    const auto specific = shared_model().predict_mesh_specific(deck, part);
    const auto general = shared_model().predict_general(
        204800, pes, core::GeneralModelMode::kHomogeneous);
    EXPECT_NEAR(specific.computation / general.computation, 1.0, 0.12)
        << "pes=" << pes;
  }
}

}  // namespace
}  // namespace krak
