#include <gtest/gtest.h>

#include "lint/repo.hpp"

namespace krak::lint {
namespace {

// The repo enforces its own rules: this test runs the real analyzer
// over the real source tree (KRAK_LINT_SOURCE_DIR is injected by CMake
// as the project root) and fails on any finding. A rule change that
// fires on existing code, or new code that breaks an invariant, fails
// here before it ever reaches CI's dedicated lint job.
TEST(SelfClean, RepositoryLintsClean) {
  const LintReport report = lint_tree(KRAK_LINT_SOURCE_DIR);
  // Sanity: the walk actually visited the tree.
  EXPECT_GT(report.files_scanned, 200U);
  EXPECT_TRUE(report.clean()) << report.to_text();
}

}  // namespace
}  // namespace krak::lint
