#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/checks.hpp"
#include "lint/rules.hpp"
#include "lint/scanner.hpp"

namespace krak::lint {
namespace {

// Every fixture below lives in a string literal on purpose: the scanner
// blanks literal interiors, so these snippets are invisible when
// krak_lint scans this test file itself (see self_clean_test.cpp).

FileLintResult lint_snippet(const std::string& path,
                            const std::string& content,
                            const Policy& policy = Policy{}) {
  return lint_source_file(scan_source(path, content), policy);
}

std::vector<std::string> fired_rules(const FileLintResult& result) {
  std::vector<std::string> ids;
  ids.reserve(result.findings.size());
  for (const Finding& finding : result.findings) ids.push_back(finding.rule);
  return ids;
}

Policy deterministic_policy() {
  Policy policy;
  policy.deterministic = true;
  return policy;
}

TEST(RuleFixtures, NoRandomDevice) {
  const auto result = lint_snippet(
      "a.cpp", "void seed() { std::random_device entropy; (void)entropy; }\n");
  EXPECT_EQ(fired_rules(result),
            std::vector<std::string>{std::string(rules::kNoRandomDevice)});
}

TEST(RuleFixtures, NoStdRand) {
  const auto result = lint_snippet(
      "a.cpp", "int draw() { srand(7u); return rand(); }\n");
  EXPECT_EQ(fired_rules(result),
            (std::vector<std::string>{std::string(rules::kNoStdRand),
                                      std::string(rules::kNoStdRand)}));
}

TEST(RuleFixtures, NoWallClock) {
  const std::string snippet =
      "double stamp() {\n"
      "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
      "}\n";
  const auto result = lint_snippet("a.cpp", snippet);
  EXPECT_EQ(fired_rules(result),
            std::vector<std::string>{std::string(rules::kNoWallClock)});

  Policy exempt;
  exempt.clock_exempt = true;
  EXPECT_TRUE(lint_snippet("a.cpp", snippet, exempt).findings.empty());
}

TEST(RuleFixtures, NoWallClockIgnoresProjectMethodsNamedLikeClocks) {
  // Member accesses such as summary.time() name project methods.
  const auto result =
      lint_snippet("a.cpp", "double f(const Row& row) { return row.time(); }\n");
  EXPECT_TRUE(result.findings.empty());
}

TEST(RuleFixtures, NoUnorderedIteration) {
  const std::string snippet =
      "std::unordered_map<int, int> cells;\n"
      "int sum() {\n"
      "  int total = 0;\n"
      "  for (const auto& item : cells) { total += item.second; }\n"
      "  return total;\n"
      "}\n";
  const auto result = lint_snippet("a.cpp", snippet, deterministic_policy());
  ASSERT_EQ(fired_rules(result),
            std::vector<std::string>{
                std::string(rules::kNoUnorderedIteration)});
  EXPECT_EQ(result.findings[0].line, 4U);
  // Outside a deterministic tree the rule stays off.
  EXPECT_TRUE(lint_snippet("a.cpp", snippet).findings.empty());
}

TEST(RuleFixtures, NoUnorderedIterationCatchesExplicitIterators) {
  const std::string snippet =
      "std::unordered_set<int> seen;\n"
      "auto first() { return seen.begin(); }\n";
  const auto result = lint_snippet("a.cpp", snippet, deterministic_policy());
  EXPECT_EQ(fired_rules(result),
            std::vector<std::string>{
                std::string(rules::kNoUnorderedIteration)});
}

TEST(RuleFixtures, NoPointerKeyedContainer) {
  const std::string snippet =
      "struct Node;\n"
      "std::map<const Node*, int> owners;\n";
  const auto result = lint_snippet("a.cpp", snippet, deterministic_policy());
  ASSERT_EQ(fired_rules(result),
            std::vector<std::string>{
                std::string(rules::kNoPointerKeyedContainer)});
  EXPECT_EQ(result.findings[0].line, 2U);
  // Value-keyed containers are fine.
  EXPECT_TRUE(lint_snippet("a.cpp", "std::map<int, int> by_id;\n",
                           deterministic_policy())
                  .findings.empty());
}

TEST(RuleFixtures, NoNakedAssert) {
  const std::string snippet =
      "static_assert(2 + 2 == 4);\n"
      "void f(int x) { assert(x > 0); }\n";
  const auto result = lint_snippet("a.cpp", snippet);
  ASSERT_EQ(fired_rules(result),
            std::vector<std::string>{std::string(rules::kNoNakedAssert)});
  EXPECT_EQ(result.findings[0].line, 2U);
}

TEST(RuleFixtures, NoAbort) {
  const auto result =
      lint_snippet("a.cpp", "void die() { std::abort(); }\n");
  EXPECT_EQ(fired_rules(result),
            std::vector<std::string>{std::string(rules::kNoAbort)});
}

TEST(RuleFixtures, ThreadpoolTaskThrow) {
  const auto result = lint_snippet(
      "a.cpp",
      "void f(Pool& pool) {\n"
      "  pool.submit([] { throw 1; });\n"
      "}\n");
  ASSERT_EQ(fired_rules(result),
            std::vector<std::string>{
                std::string(rules::kThreadpoolTaskThrow)});
  EXPECT_EQ(result.findings[0].line, 2U);
  // A task that guards its body with try/catch passes.
  EXPECT_TRUE(
      lint_snippet("a.cpp",
                   "void g(Pool& pool) {\n"
                   "  pool.submit([] { try { work(); } catch (...) {} });\n"
                   "}\n")
          .findings.empty());
}

TEST(RuleFixtures, PragmaOnce) {
  const auto result = lint_snippet("x.hpp", "int f();\n");
  EXPECT_EQ(fired_rules(result),
            std::vector<std::string>{std::string(rules::kPragmaOnce)});
  // Sources are exempt; guarded headers pass.
  EXPECT_TRUE(lint_snippet("x.cpp", "int f();\n").findings.empty());
  EXPECT_TRUE(
      lint_snippet("x.hpp", "#pragma once\nint f();\n").findings.empty());
}

TEST(RuleFixtures, NoUsingNamespaceHeader) {
  const auto result = lint_snippet(
      "x.hpp", "#pragma once\nusing namespace std;\n");
  ASSERT_EQ(fired_rules(result),
            std::vector<std::string>{
                std::string(rules::kNoUsingNamespaceHeader)});
  // Aliases are fine.
  EXPECT_TRUE(lint_snippet("x.hpp", "#pragma once\nusing std::string;\n")
                  .findings.empty());
}

TEST(RuleFixtures, NoSelfInclude) {
  const auto result = lint_snippet(
      "dir/foo.hpp", "#pragma once\n#include \"dir/foo.hpp\"\n");
  ASSERT_EQ(fired_rules(result),
            std::vector<std::string>{std::string(rules::kNoSelfInclude)});
  EXPECT_EQ(result.findings[0].line, 2U);
}

TEST(RuleFixtures, NoDuplicateInclude) {
  const auto result = lint_snippet(
      "a.cpp", "#include <vector>\n#include <string>\n#include <vector>\n");
  ASSERT_EQ(fired_rules(result),
            std::vector<std::string>{
                std::string(rules::kNoDuplicateInclude)});
  EXPECT_EQ(result.findings[0].line, 3U);
  // A commented-out include is not a live include.
  EXPECT_TRUE(
      lint_snippet("a.cpp", "#include <vector>\n// #include <vector>\n")
          .findings.empty());
}

TEST(RuleFixtures, HotPathProbe) {
  const auto result = lint_snippet(
      "a.cpp",
      "// krak: hot -- inner loop of the solve\n"
      "int f() { return 42; }\n");
  EXPECT_EQ(fired_rules(result),
            std::vector<std::string>{std::string(rules::kHotPathProbe)});
  // An annotated function whose body records a probe passes.
  EXPECT_TRUE(lint_snippet("a.cpp",
                           "// krak: hot -- inner loop of the solve\n"
                           "void g() {\n"
                           "  obs::global_registry().counter(\"f\").add(1);\n"
                           "}\n")
                  .findings.empty());
}

TEST(RuleFixtures, TodoOwner) {
  const auto result = lint_snippet("a.cpp",
                                   "// TODO: someday\n"
                                   "// TODO(alice): tracked\n"
                                   "int x = 0;\n");
  ASSERT_EQ(fired_rules(result),
            std::vector<std::string>{std::string(rules::kTodoOwner)});
  EXPECT_EQ(result.findings[0].line, 1U);
  // Both markers count toward the tree budget, owned or not.
  EXPECT_EQ(result.todo_count, 2);
}

TEST(RuleFixtures, BadSuppressionUnknownRule) {
  const std::string marker = std::string("// krak-lint") + ": ";
  const auto result = lint_snippet(
      "a.cpp", "int x = 1;  " + marker + "allow(not-a-rule stale note)\n");
  EXPECT_EQ(fired_rules(result),
            std::vector<std::string>{std::string(rules::kBadSuppression)});
}

TEST(RuleFixtures, BadSuppressionMissingReason) {
  const std::string marker = std::string("// krak-lint") + ": ";
  const auto result =
      lint_snippet("a.cpp", "int x = 1;  " + marker + "allow(no-abort)\n");
  EXPECT_EQ(fired_rules(result),
            std::vector<std::string>{std::string(rules::kBadSuppression)});
}

TEST(RuleFixtures, SuppressionSilencesSameLine) {
  const std::string marker = std::string("// krak-lint") + ": ";
  const auto result = lint_snippet(
      "a.cpp",
      "void die() { std::abort(); }  " + marker + "allow(no-abort fixture)\n");
  EXPECT_TRUE(result.findings.empty());
}

TEST(RuleFixtures, SuppressionSilencesNextLine) {
  const std::string marker = std::string("// krak-lint") + ": ";
  const auto result = lint_snippet(
      "a.cpp",
      marker + "allow(no-abort fixture)\nvoid die() { std::abort(); }\n");
  EXPECT_TRUE(result.findings.empty());
}

TEST(RuleFixtures, SuppressionOnlyCoversItsRule) {
  const std::string marker = std::string("// krak-lint") + ": ";
  const auto result = lint_snippet(
      "a.cpp",
      "int f() { std::abort(); return rand(); }  " + marker +
          "allow(no-abort fixture)\n");
  EXPECT_EQ(fired_rules(result),
            std::vector<std::string>{std::string(rules::kNoStdRand)});
}

TEST(RuleFixtures, DisabledRuleDoesNotFire) {
  Policy policy;
  policy.disabled.insert(std::string(rules::kNoAbort));
  const auto result =
      lint_snippet("a.cpp", "void die() { std::abort(); }\n", policy);
  EXPECT_TRUE(result.findings.empty());
}

}  // namespace
}  // namespace krak::lint
