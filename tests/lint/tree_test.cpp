#include "lint/repo.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "lint/rules.hpp"
#include "util/error.hpp"

namespace krak::lint {
namespace {

namespace fs = std::filesystem;

/// A scratch tree under the test temp dir, wiped per fixture.
class TreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "krak_lint_tree" /
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }

  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& relative, const std::string& content) const {
    const fs::path path = root_ / relative;
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << path;
    out << content;
  }

  [[nodiscard]] std::string root() const { return root_.string(); }

 private:
  fs::path root_;
};

const std::string kClockSnippet =
    "void f() { auto t = std::chrono::steady_clock::now(); (void)t; }\n";

TEST_F(TreeTest, PolicyFileAppliesToItsSubtreeOnly) {
  write("src/.kraklint", "clock-exempt true\n");
  write("src/timer.cpp", kClockSnippet);
  write("tests/timer.cpp", kClockSnippet);
  const LintReport report = lint_tree(root());
  EXPECT_EQ(report.files_scanned, 2U);
  ASSERT_EQ(report.findings.size(), 1U);
  EXPECT_EQ(report.findings[0].rule, rules::kNoWallClock);
  EXPECT_EQ(report.findings[0].path, "tests/timer.cpp");
}

TEST_F(TreeTest, NestedPolicyOverlaysParent) {
  write("src/.kraklint", "deterministic true\n");
  write("src/inner/.kraklint", "disable no-unordered-iteration\n");
  const std::string snippet =
      "std::unordered_set<int> seen;\n"
      "auto first() { return seen.begin(); }\n";
  write("src/walk.cpp", snippet);
  write("src/inner/walk.cpp", snippet);
  const LintReport report = lint_tree(root());
  ASSERT_EQ(report.findings.size(), 1U);
  EXPECT_EQ(report.findings[0].path, "src/walk.cpp");
}

TEST_F(TreeTest, TodoBudgetFiresAtTreeLevel) {
  write(".kraklint", "todo-budget 1\n");
  write("src/a.cpp", "// TODO(alice): one\n// TODO(bob): two\nint x = 0;\n");
  const LintReport report = lint_tree(root());
  ASSERT_EQ(report.findings.size(), 1U);
  EXPECT_EQ(report.findings[0].rule, rules::kTodoBudget);
  EXPECT_EQ(report.findings[0].line, 0U);
  EXPECT_EQ(report.findings[0].path, report.root);
}

TEST_F(TreeTest, TodoBudgetWithinLimitIsClean) {
  write(".kraklint", "todo-budget 2\n");
  write("src/a.cpp", "// TODO(alice): one\n// TODO(bob): two\nint x = 0;\n");
  EXPECT_TRUE(lint_tree(root()).clean());
}

TEST_F(TreeTest, SkipsBuildAndDotDirectoriesAndForeignExtensions) {
  write("src/ok.cpp", "int x = 0;\n");
  write("src/build/bad.cpp", "void f() { std::abort(); }\n");
  write("src/.cache/bad.cpp", "void f() { std::abort(); }\n");
  write("src/notes.md", "not C++\n");
  const LintReport report = lint_tree(root());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.files_scanned, 1U);
}

TEST_F(TreeTest, ReportIsByteStable) {
  write("src/a.cpp", "void f() { std::abort(); }\n");
  write("src/b.cpp", "int g() { return rand(); }\n");
  const std::string first = lint_tree(root()).to_json().dump();
  const std::string second = lint_tree(root()).to_json().dump();
  EXPECT_EQ(first, second);
}

TEST_F(TreeTest, MalformedPolicyFileThrows) {
  write("src/.kraklint", "frobnicate yes\n");
  write("src/a.cpp", "int x = 0;\n");
  EXPECT_THROW(lint_tree(root()), util::KrakError);
}

TEST_F(TreeTest, MissingRootThrows) {
  EXPECT_THROW(lint_tree(root() + "/no-such-dir"), util::KrakError);
}

}  // namespace
}  // namespace krak::lint
