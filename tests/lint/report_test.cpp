#include "lint/finding.hpp"

#include <gtest/gtest.h>

#include <string>

namespace krak::lint {
namespace {

LintReport sample_report() {
  LintReport report;
  report.root = "/repo";
  report.files_scanned = 3;
  report.findings = {
      Finding{"no-abort", "src/a.cpp", 12, "teardown bypasses destructors"},
      Finding{"no-abort", "src/b.cpp", 4, "teardown bypasses destructors"},
      Finding{"todo-budget", "/repo", 0, "over budget"},
  };
  return report;
}

TEST(Report, TextFormatListsFindingsAndSummary) {
  const std::string text = sample_report().to_text();
  EXPECT_NE(text.find("src/a.cpp:12: [no-abort] teardown bypasses"),
            std::string::npos);
  // Tree-level findings (line 0) omit the line number.
  EXPECT_NE(text.find("/repo: [todo-budget] over budget"), std::string::npos);
  EXPECT_NE(text.find("3 files, 3 findings (no-abort x2, todo-budget x1)"),
            std::string::npos);
}

TEST(Report, CleanTextSummary) {
  LintReport report;
  report.files_scanned = 5;
  EXPECT_NE(report.to_text().find("5 files, 0 findings"), std::string::npos);
  EXPECT_TRUE(report.clean());
}

TEST(Report, JsonMatchesSchemaV1) {
  const obs::Json doc =
      obs::Json::parse(sample_report().to_json().dump());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->as_string(), "krak-lint-v1");
  EXPECT_EQ(doc.find("root")->as_string(), "/repo");
  EXPECT_EQ(doc.find("files_scanned")->as_double(), 3.0);
  EXPECT_FALSE(doc.find("clean")->as_bool());
  const obs::Json* counts = doc.find("counts");
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->find("no-abort")->as_double(), 2.0);
  EXPECT_EQ(counts->find("todo-budget")->as_double(), 1.0);
  const obs::Json* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->size(), 3U);
  const obs::Json& first = findings->as_array()[0];
  EXPECT_EQ(first.find("rule")->as_string(), "no-abort");
  EXPECT_EQ(first.find("path")->as_string(), "src/a.cpp");
  EXPECT_EQ(first.find("line")->as_double(), 12.0);
  EXPECT_EQ(first.find("message")->as_string(),
            "teardown bypasses destructors");
}

TEST(Report, CleanJson) {
  LintReport report;
  report.root = ".";
  report.files_scanned = 7;
  const obs::Json doc = obs::Json::parse(report.to_json().dump());
  EXPECT_TRUE(doc.find("clean")->as_bool());
  EXPECT_EQ(doc.find("findings")->size(), 0U);
}

TEST(Report, CountsByRuleAggregates) {
  const auto counts = sample_report().counts_by_rule();
  ASSERT_EQ(counts.size(), 2U);
  EXPECT_EQ(counts.at("no-abort"), 2U);
  EXPECT_EQ(counts.at("todo-budget"), 1U);
}

}  // namespace
}  // namespace krak::lint
