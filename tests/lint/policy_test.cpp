#include "lint/policy.hpp"

#include <gtest/gtest.h>

#include "lint/rules.hpp"
#include "util/error.hpp"

namespace krak::lint {
namespace {

TEST(Policy, DefaultsAreConservative) {
  const Policy policy;
  EXPECT_FALSE(policy.deterministic);
  EXPECT_FALSE(policy.clock_exempt);
  EXPECT_EQ(policy.todo_budget, -1);
  EXPECT_TRUE(policy.rule_enabled(rules::kNoStdRand));
}

TEST(Policy, ParsesAllKeys) {
  const Policy policy = apply_policy_text(Policy{},
                                          "# comment line\n"
                                          "deterministic true\n"
                                          "clock-exempt true\n"
                                          "todo-budget 7\n"
                                          "disable todo-owner\n",
                                          "test");
  EXPECT_TRUE(policy.deterministic);
  EXPECT_TRUE(policy.clock_exempt);
  EXPECT_EQ(policy.todo_budget, 7);
  EXPECT_FALSE(policy.rule_enabled(rules::kTodoOwner));
  EXPECT_TRUE(policy.rule_enabled(rules::kNoAbort));
}

TEST(Policy, ChildOverlaysParentKeyByKey) {
  const Policy parent = apply_policy_text(
      Policy{}, "deterministic true\ndisable no-abort\n", "parent");
  const Policy child =
      apply_policy_text(parent, "clock-exempt true\nenable no-abort\n",
                        "child");
  // Inherited from the parent:
  EXPECT_TRUE(child.deterministic);
  // Set by the child:
  EXPECT_TRUE(child.clock_exempt);
  EXPECT_TRUE(child.rule_enabled(rules::kNoAbort));
}

TEST(Policy, RejectsUnknownKey) {
  EXPECT_THROW(apply_policy_text(Policy{}, "frobnicate yes\n", "test"),
               util::InvalidArgument);
}

TEST(Policy, RejectsUnknownRuleName) {
  EXPECT_THROW(apply_policy_text(Policy{}, "disable not-a-rule\n", "test"),
               util::InvalidArgument);
}

TEST(Policy, RejectsBadBudget) {
  EXPECT_THROW(apply_policy_text(Policy{}, "todo-budget many\n", "test"),
               util::InvalidArgument);
}

TEST(Rules, CatalogHasAtLeastTwelveRulesWithSummaries) {
  const auto& catalog = rule_catalog();
  EXPECT_GE(catalog.size(), 12U);
  for (const RuleInfo& info : catalog) {
    EXPECT_FALSE(info.id.empty());
    EXPECT_FALSE(info.summary.empty());
    EXPECT_TRUE(is_known_rule(info.id)) << info.id;
  }
  EXPECT_FALSE(is_known_rule("not-a-rule"));
}

}  // namespace
}  // namespace krak::lint
