#include "lint/scanner.hpp"

#include <gtest/gtest.h>

#include <string>

namespace krak::lint {
namespace {

TEST(Scanner, SplitsCodeAndCommentChannels) {
  const ScannedFile file =
      scan_source("a.cpp", "int x = 1;  // trailing note\nint y = 2;\n");
  ASSERT_EQ(file.lines.size(), 2U);
  EXPECT_EQ(file.lines[0].code.substr(0, 10), "int x = 1;");
  EXPECT_EQ(file.lines[0].comment, " trailing note");
  EXPECT_EQ(file.lines[1].code, "int y = 2;");
  EXPECT_TRUE(file.lines[1].comment.empty());
}

TEST(Scanner, BlanksStringLiteralInteriors) {
  const ScannedFile file =
      scan_source("a.cpp", "auto s = \"assert(rand());\";\n");
  ASSERT_EQ(file.lines.size(), 1U);
  EXPECT_EQ(file.lines[0].code.find("assert"), std::string::npos);
  EXPECT_EQ(file.lines[0].code.find("rand"), std::string::npos);
  // The delimiting quotes survive so tokens cannot fuse.
  EXPECT_NE(file.lines[0].code.find('"'), std::string::npos);
  // The raw channel keeps the original text.
  EXPECT_NE(file.lines[0].raw.find("assert"), std::string::npos);
}

TEST(Scanner, BlanksCharLiteralsAndEscapes) {
  const ScannedFile file =
      scan_source("a.cpp", "char c = ')'; auto s = \"a\\\"b\"; int z = 0;\n");
  ASSERT_EQ(file.lines.size(), 1U);
  // The escaped quote does not terminate the literal early: z survives
  // as code, the literal body does not.
  EXPECT_NE(file.lines[0].code.find("int z = 0;"), std::string::npos);
  EXPECT_EQ(file.lines[0].code.find("a\\\"b"), std::string::npos);
}

TEST(Scanner, BlockCommentsSpanLines) {
  const ScannedFile file =
      scan_source("a.cpp", "int a; /* begin\nstill comment\nend */ int b;\n");
  ASSERT_EQ(file.lines.size(), 3U);
  EXPECT_NE(file.lines[0].code.find("int a;"), std::string::npos);
  EXPECT_TRUE(file.lines[1].code.empty());
  EXPECT_EQ(file.lines[1].comment, "still comment");
  EXPECT_NE(file.lines[2].code.find("int b;"), std::string::npos);
}

TEST(Scanner, RawStringsAreBlanked) {
  const std::string content =
      std::string("auto s = R\"(assert(1); // not a comment)\"; int k;\n");
  const ScannedFile file = scan_source("a.cpp", content);
  ASSERT_EQ(file.lines.size(), 1U);
  EXPECT_EQ(file.lines[0].code.find("assert"), std::string::npos);
  EXPECT_TRUE(file.lines[0].comment.empty());
  EXPECT_NE(file.lines[0].code.find("int k;"), std::string::npos);
}

TEST(Scanner, HeaderRecognizedByExtension) {
  EXPECT_TRUE(scan_source("dir/x.hpp", "").is_header);
  EXPECT_FALSE(scan_source("dir/x.cpp", "").is_header);
}

TEST(Scanner, ParsesSuppressionWithReason) {
  const std::string marker = std::string("krak-lint") + ": ";
  const ScannedFile file = scan_source(
      "a.cpp", "int x;  // " + marker + "allow(no-abort cli usage exit)\n");
  ASSERT_EQ(file.suppressions.size(), 1U);
  ASSERT_EQ(file.suppressions[0].size(), 1U);
  EXPECT_FALSE(file.suppressions[0][0].malformed);
  EXPECT_EQ(file.suppressions[0][0].rule, "no-abort");
  EXPECT_EQ(file.suppressions[0][0].reason, "cli usage exit");
  EXPECT_TRUE(file.is_suppressed("no-abort", 1));
  EXPECT_FALSE(file.is_suppressed("no-std-rand", 1));
  // The line after an annotated line is also covered.
  EXPECT_TRUE(file.is_suppressed("no-abort", 2));
}

TEST(Scanner, SuppressionWithoutReasonIsMalformed) {
  const std::string marker = std::string("krak-lint") + ": ";
  const ScannedFile file =
      scan_source("a.cpp", "int x;  // " + marker + "allow(no-abort)\n");
  ASSERT_EQ(file.suppressions[0].size(), 1U);
  EXPECT_TRUE(file.suppressions[0][0].malformed);
  EXPECT_FALSE(file.is_suppressed("no-abort", 1));
}

TEST(Scanner, SuppressionWithBadSyntaxIsMalformed) {
  const std::string marker = std::string("krak-lint") + ": ";
  const ScannedFile file =
      scan_source("a.cpp", "int x;  // " + marker + "forbid(no-abort x)\n");
  ASSERT_EQ(file.suppressions[0].size(), 1U);
  EXPECT_TRUE(file.suppressions[0][0].malformed);
}

}  // namespace
}  // namespace krak::lint
