#include "hydro/state.hpp"

#include <gtest/gtest.h>

#include "mesh/deck.hpp"
#include "util/error.hpp"

namespace krak::hydro {
namespace {

using mesh::Material;

TEST(HydroState, InitialGeometryMatchesGrid) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(4, 3, Material::kFoam);
  const HydroState state(deck);
  EXPECT_EQ(state.num_cells(), 12);
  EXPECT_EQ(state.num_nodes(), 20);
  for (std::int64_t cell = 0; cell < state.num_cells(); ++cell) {
    EXPECT_DOUBLE_EQ(state.cell_volume[static_cast<std::size_t>(cell)], 1.0);
  }
}

TEST(HydroState, InitialDensityMatchesEos) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const HydroState state(deck);
  for (std::int64_t cell = 0; cell < state.num_cells(); ++cell) {
    const auto i = static_cast<std::size_t>(cell);
    const MaterialEos& eos =
        eos_for(deck.material_of(static_cast<mesh::CellId>(cell)));
    EXPECT_DOUBLE_EQ(state.density[i], eos.reference_density);
    EXPECT_DOUBLE_EQ(state.cell_mass[i],
                     eos.reference_density * state.cell_volume[i]);
    EXPECT_GT(state.pressure[i], 0.0);
  }
}

TEST(HydroState, StartsAtRest) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(3, 3, Material::kFoam);
  const HydroState state(deck);
  EXPECT_DOUBLE_EQ(state.total_kinetic_energy(), 0.0);
  EXPECT_GT(state.total_internal_energy(), 0.0);
}

TEST(HydroState, NodeMassesSumToTotalMass) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const HydroState state(deck);
  double node_total = 0.0;
  for (double m : state.node_mass) node_total += m;
  EXPECT_NEAR(node_total, state.total_mass(), 1e-9);
}

TEST(HydroState, InteriorNodeCarriesFourQuarters) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(3, 3, Material::kFoam);
  const HydroState state(deck);
  const double cell_mass = state.cell_mass[0];
  const auto center = static_cast<std::size_t>(deck.grid().node_at(1, 1));
  EXPECT_NEAR(state.node_mass[center], cell_mass, 1e-12);
  const auto corner = static_cast<std::size_t>(deck.grid().node_at(0, 0));
  EXPECT_NEAR(state.node_mass[corner], 0.25 * cell_mass, 1e-12);
}

TEST(HydroState, VolumeTracksNodeMotion) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(1, 1, Material::kFoam);
  HydroState state(deck);
  // Stretch the single cell by moving the NE node outward.
  const auto ne = static_cast<std::size_t>(deck.grid().node_at(1, 1));
  state.node_x[ne] = 2.0;
  state.node_y[ne] = 2.0;
  state.update_geometry();
  EXPECT_GT(state.cell_volume[0], 1.0);
  EXPECT_LT(state.density[0], eos_for(Material::kFoam).reference_density);
  // Mass is invariant.
  EXPECT_DOUBLE_EQ(state.cell_mass[0],
                   eos_for(Material::kFoam).reference_density);
}

TEST(HydroState, InvertedCellDetected) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(1, 1, Material::kFoam);
  HydroState state(deck);
  // Collapse the cell past inversion.
  const auto ne = static_cast<std::size_t>(deck.grid().node_at(1, 1));
  state.node_x[ne] = -2.0;
  state.node_y[ne] = -2.0;
  EXPECT_THROW(state.update_geometry(), util::InternalError);
}

TEST(HydroState, MaxPressureFindsHottestCell) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(4, 1, Material::kFoam);
  HydroState state(deck);
  state.specific_energy[2] = 100.0;
  state.pressure[2] =
      eos_for(Material::kFoam).pressure(state.density[2], 100.0);
  const auto [pressure, cell] = state.max_pressure();
  EXPECT_EQ(cell, 2);
  EXPECT_DOUBLE_EQ(pressure, state.pressure[2]);
}

TEST(HydroState, NothingBurnedInitially) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const HydroState state(deck);
  for (bool b : state.burned) EXPECT_FALSE(b);
}

}  // namespace
}  // namespace krak::hydro
