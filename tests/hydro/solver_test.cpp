#include "hydro/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/deck.hpp"
#include "util/error.hpp"

namespace krak::hydro {
namespace {

using mesh::Material;

TEST(HydroSolver, ConfigValidated) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(4, 4, Material::kFoam);
  HydroState state(deck);
  HydroConfig config;
  config.cfl = 0.0;
  EXPECT_THROW(HydroSolver(state, config), util::InvalidArgument);
  config.cfl = 0.25;
  config.initial_dt = 0.0;
  EXPECT_THROW(HydroSolver(state, config), util::InvalidArgument);
}

TEST(HydroSolver, UniformStateStaysAtRest) {
  // A uniform-pressure block with the free-surface boundary expands,
  // but interior nodes feel balanced forces: check the interior node of
  // a 4x4 block stays put for one step while corners accelerate.
  const mesh::InputDeck deck = mesh::make_uniform_deck(4, 4, Material::kFoam);
  HydroState state(deck);
  HydroSolver solver(state);
  (void)solver.step();
  const auto center = static_cast<std::size_t>(deck.grid().node_at(2, 2));
  EXPECT_NEAR(state.velocity_x[center], 0.0, 1e-12);
  EXPECT_NEAR(state.velocity_y[center], 0.0, 1e-12);
  const auto corner = static_cast<std::size_t>(deck.grid().node_at(4, 4));
  EXPECT_GT(std::hypot(state.velocity_x[corner], state.velocity_y[corner]),
            0.0);
}

TEST(HydroSolver, MassExactlyConserved) {
  const mesh::InputDeck deck = mesh::make_cylindrical_deck(20, 10);
  HydroState state(deck);
  const double mass0 = state.total_mass();
  HydroSolver solver(state);
  (void)solver.run_until(0.5, 2000);
  EXPECT_DOUBLE_EQ(state.total_mass(), mass0);
}

TEST(HydroSolver, DetonationReleasesEnergyProgressively) {
  const mesh::InputDeck deck = mesh::make_cylindrical_deck(40, 20);
  HydroState state(deck);
  const double e0 = state.total_energy();
  HydroSolver solver(state);
  // The detonator sits ~0.7 cells from the nearest HE cell center and
  // the front moves at speed 6, so burning starts shortly after t=0.12.
  const StepStats early = solver.run_until(0.25, 1000);
  const double after_start = early.total_energy;
  EXPECT_GT(after_start, e0);  // some HE burned already
  const StepStats later = solver.run_until(0.8, 10000);
  EXPECT_GT(later.total_energy, after_start);  // front kept advancing
  EXPECT_GT(later.burn_front_radius, early.burn_front_radius);
}

TEST(HydroSolver, EnergyBudgetMatchesBurnedMass) {
  // Total energy after a run = initial + detonation energy of burned
  // cells, within the explicit integrator's PdV discretization error.
  const mesh::InputDeck deck = mesh::make_cylindrical_deck(40, 20);
  HydroState state(deck);
  const double e0 = state.total_energy();
  HydroConfig config;
  config.cfl = 0.1;  // tight step bounds the work-mismatch error
  HydroSolver solver(state, config);
  const StepStats stats = solver.run_until(0.6, 20000);
  double released = 0.0;
  const double q = eos_for(Material::kHEGas).detonation_energy;
  for (std::int64_t cell = 0; cell < state.num_cells(); ++cell) {
    if (state.burned[static_cast<std::size_t>(cell)]) {
      released += state.cell_mass[static_cast<std::size_t>(cell)] * q;
    }
  }
  EXPECT_GT(released, 0.0);
  EXPECT_NEAR(stats.total_energy / (e0 + released), 1.0, 0.15);
}

TEST(HydroSolver, BurnDisabledConservesEnergyClosely) {
  // Without the burn the only dynamics are free-surface expansion;
  // PdV bookkeeping should conserve total energy to ~1%.
  const mesh::InputDeck deck = mesh::make_uniform_deck(10, 10, Material::kFoam);
  HydroState state(deck);
  const double e0 = state.total_energy();
  HydroConfig config;
  config.enable_burn = false;
  config.cfl = 0.1;
  HydroSolver solver(state, config);
  const StepStats stats = solver.run_until(0.5, 20000);
  EXPECT_NEAR(stats.total_energy / e0, 1.0, 0.01);
}

TEST(HydroSolver, AxisNodesNeverMoveRadially) {
  const mesh::InputDeck deck = mesh::make_cylindrical_deck(20, 10);
  HydroState state(deck);
  HydroSolver solver(state);
  (void)solver.run_until(0.3, 2000);
  for (std::int32_t j = 0; j <= deck.grid().ny(); ++j) {
    const auto node = static_cast<std::size_t>(deck.grid().node_at(0, j));
    EXPECT_DOUBLE_EQ(state.node_x[node], 0.0) << "axis node row " << j;
  }
}

TEST(HydroSolver, ShockReachesAluminumLayer) {
  // The detonation must drive a pressure wave out of the HE region into
  // the surrounding layers: after the front crosses the HE/Al boundary,
  // some aluminum cell must be well above its initial pressure.
  const mesh::InputDeck deck = mesh::make_cylindrical_deck(40, 20);
  HydroState state(deck);
  double initial_al_pressure = 0.0;
  for (std::int64_t cell = 0; cell < state.num_cells(); ++cell) {
    if (deck.material_of(static_cast<mesh::CellId>(cell)) ==
        Material::kAluminumInner) {
      initial_al_pressure = state.pressure[static_cast<std::size_t>(cell)];
      break;
    }
  }
  HydroSolver solver(state);
  // The HE/aluminum interface sits ~16 cells from the detonator; the
  // programmed front arrives at t ~ 2.7, so run well past that.
  (void)solver.run_until(4.0, 40000);
  double max_al_pressure = 0.0;
  for (std::int64_t cell = 0; cell < state.num_cells(); ++cell) {
    if (deck.material_of(static_cast<mesh::CellId>(cell)) ==
        Material::kAluminumInner) {
      max_al_pressure = std::max(
          max_al_pressure, state.pressure[static_cast<std::size_t>(cell)]);
    }
  }
  EXPECT_GT(max_al_pressure, 3.0 * initial_al_pressure);
}

TEST(HydroSolver, TimestepRespondsToSoundSpeed) {
  const mesh::InputDeck deck = mesh::make_cylindrical_deck(20, 10);
  HydroState state(deck);
  HydroConfig config;
  config.max_dt = 0.2;  // above the quiet CFL step, below inversion risk
  HydroSolver solver(state, config);
  (void)solver.step();
  const double quiet_dt = solver.dt();
  // After the detonation heats the core, sound speeds jump and the CFL
  // step must shrink.
  (void)solver.run_until(0.5, 2000);
  EXPECT_LT(solver.dt(), 0.5 * quiet_dt);
}

TEST(HydroSolver, PhaseTimersCoverAllPhases) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(16, 16, Material::kFoam);
  HydroState state(deck);
  HydroSolver solver(state);
  for (int s = 0; s < 10; ++s) (void)solver.step();
  const PhaseTimers& timers = solver.timers();
  EXPECT_GT(timers.total_seconds(), 0.0);
  for (std::size_t p = 0; p < kHydroPhaseCount; ++p) {
    EXPECT_GE(timers.seconds(static_cast<HydroPhase>(p)), 0.0);
  }
  // The per-cell phases must dominate the fixed-cost burn check.
  EXPECT_GT(timers.seconds(HydroPhase::kForces), 0.0);
}

TEST(HydroSolver, RunUntilHonorsStepCap) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(8, 8, Material::kFoam);
  HydroState state(deck);
  HydroSolver solver(state);
  (void)solver.run_until(100.0, 5);
  EXPECT_EQ(solver.steps_taken(), 5);
  EXPECT_THROW((void)solver.run_until(-1.0), util::InvalidArgument);
}

TEST(HydroSolver, PhaseNamesAreUnique) {
  std::set<std::string_view> names;
  for (std::size_t p = 0; p < kHydroPhaseCount; ++p) {
    names.insert(hydro_phase_name(static_cast<HydroPhase>(p)));
  }
  EXPECT_EQ(names.size(), kHydroPhaseCount);
}

}  // namespace
}  // namespace krak::hydro
