#include "hydro/measure.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace krak::hydro {
namespace {

using mesh::Material;

TEST(Measure, SampleHasPositiveCosts) {
  const HydroCostSample sample =
      measure_uniform_cost(Material::kFoam, 256, 5);
  EXPECT_GE(sample.cells, 256);
  EXPECT_EQ(sample.steps, 5);
  EXPECT_GT(sample.total_per_cell_seconds(), 0.0);
  // The bulk per-cell phases must all register time.
  EXPECT_GT(sample.per_cell_seconds[static_cast<std::size_t>(
                HydroPhase::kEos)],
            0.0);
  EXPECT_GT(sample.per_cell_seconds[static_cast<std::size_t>(
                HydroPhase::kForces)],
            0.0);
}

TEST(Measure, RequestedCellCountIsLowerBound) {
  // Grids are rectangularized upward, never truncated.
  for (std::int64_t cells : {1, 2, 10, 100, 1000}) {
    const HydroCostSample sample =
        measure_uniform_cost(Material::kHEGas, cells, 1);
    EXPECT_GE(sample.cells, cells);
    EXPECT_LT(sample.cells, cells + 2 * 32 + 64);  // near-square bound
  }
}

TEST(Measure, SweepReturnsOneSamplePerSize) {
  const std::vector<std::int64_t> sizes = {16, 64, 256};
  const auto samples = sweep_hydro_costs(Material::kFoam, sizes, 3);
  ASSERT_EQ(samples.size(), 3u);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_GE(samples[i].cells, sizes[i]);
  }
}

TEST(Measure, PerCellCostsInPlausibleBand) {
  // Wall-clock assertions are kept loose (CI machines vary); the
  // size-dependence study lives in bench_real_knee, where results are
  // narrative rather than pass/fail. Here: every phase cost is finite
  // and the total sits in a plausible 1 ns - 100 us per cell band.
  for (std::int64_t cells : {16, 4096}) {
    const HydroCostSample sample =
        measure_uniform_cost(Material::kFoam, cells, 10);
    const double total = sample.total_per_cell_seconds();
    EXPECT_GT(total, 1e-9) << cells;
    EXPECT_LT(total, 1e-4) << cells;
  }
}

TEST(Measure, RejectsBadArguments) {
  EXPECT_THROW((void)measure_uniform_cost(Material::kFoam, 0, 1),
               util::InvalidArgument);
  EXPECT_THROW((void)measure_uniform_cost(Material::kFoam, 16, 0),
               util::InvalidArgument);
}

}  // namespace
}  // namespace krak::hydro
