#include "hydro/eos.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace krak::hydro {
namespace {

using mesh::Material;

TEST(Eos, GammaLawPressure) {
  MaterialEos eos;
  eos.gamma = 1.4;
  EXPECT_DOUBLE_EQ(eos.pressure(2.0, 3.0), 0.4 * 2.0 * 3.0);
  EXPECT_DOUBLE_EQ(eos.pressure(1.0, 0.0), 0.0);
}

TEST(Eos, NoTension) {
  MaterialEos eos;
  eos.gamma = 1.4;
  EXPECT_DOUBLE_EQ(eos.pressure(1.0, -5.0), 0.0);
}

TEST(Eos, NegativeDensityRejected) {
  const MaterialEos eos;
  EXPECT_THROW((void)eos.pressure(-1.0, 1.0), util::InvalidArgument);
}

TEST(Eos, SoundSpeedMatchesGammaLaw) {
  MaterialEos eos;
  eos.gamma = 3.0;
  const double rho = 1.6;
  const double e = 4.0;
  const double p = eos.pressure(rho, e);
  EXPECT_NEAR(eos.sound_speed(rho, e), std::sqrt(3.0 * p / rho), 1e-12);
}

TEST(Eos, VacuumHasZeroSoundSpeed) {
  const MaterialEos eos;
  EXPECT_DOUBLE_EQ(eos.sound_speed(0.0, 1.0), 0.0);
}

TEST(Eos, OnlyHeGasDetonates) {
  EXPECT_GT(eos_for(Material::kHEGas).detonation_energy, 0.0);
  EXPECT_GT(eos_for(Material::kHEGas).detonation_speed, 0.0);
  for (Material m : {Material::kAluminumInner, Material::kFoam,
                     Material::kAluminumOuter}) {
    EXPECT_DOUBLE_EQ(eos_for(m).detonation_energy, 0.0);
  }
}

TEST(Eos, MaterialDensityOrdering) {
  // Aluminum densest, foam lightest — drives the material-dependent
  // wave speeds the deck is built around.
  EXPECT_GT(eos_for(Material::kAluminumInner).reference_density,
            eos_for(Material::kHEGas).reference_density);
  EXPECT_GT(eos_for(Material::kHEGas).reference_density,
            eos_for(Material::kFoam).reference_density);
}

TEST(Eos, AluminumLayersNearlyIdentical) {
  const MaterialEos& inner = eos_for(Material::kAluminumInner);
  const MaterialEos& outer = eos_for(Material::kAluminumOuter);
  EXPECT_DOUBLE_EQ(inner.gamma, outer.gamma);
  EXPECT_DOUBLE_EQ(inner.reference_density, outer.reference_density);
  EXPECT_NEAR(inner.initial_energy / outer.initial_energy, 1.0, 0.1);
}

TEST(Eos, TableAndAccessorAgree) {
  for (Material m : mesh::all_materials()) {
    EXPECT_DOUBLE_EQ(eos_table()[mesh::material_index(m)].gamma,
                     eos_for(m).gamma);
  }
}

}  // namespace
}  // namespace krak::hydro
