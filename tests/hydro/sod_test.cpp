// Verification of the Lagrangian solver against Sod's shock tube, the
// canonical compressible-flow benchmark with an exact Riemann solution.
//
// Setup (gamma = 1.4): left state rho=1, p=1; right state rho=0.125,
// p=0.1, both at rest. Exact star-state values (classic references,
// e.g. Toro, "Riemann Solvers and Numerical Methods for Fluid
// Dynamics", Table 4.2 / the standard Sod solution):
//   p*      = 0.30313   (pressure between rarefaction and shock)
//   u*      = 0.92745   (contact speed)
//   rho*L   = 0.42632   (left of the contact)
//   rho*R   = 0.26557   (right of the contact, post-shock)
//   S_shock = 1.75216   (shock speed)
// On a tube with the interface at x0, at time t: shock at
// x0 + 1.75216 t, contact at x0 + 0.92745 t.

#include <gtest/gtest.h>

#include <vector>

#include "hydro/solver.hpp"
#include "mesh/deck.hpp"

namespace krak::hydro {
namespace {

constexpr double kGamma = 1.4;
constexpr double kExactPStar = 0.30313;
constexpr double kExactRhoStarR = 0.26557;
constexpr double kExactRhoStarL = 0.42632;
constexpr double kExactShockSpeed = 1.75216;
constexpr double kExactContactSpeed = 0.92745;

/// A 1-D tube of `cells` foam cells (gamma = 1.4) with Sod's initial
/// data and rigid walls, evolved to `end_time` (cell-width units).
HydroState run_sod(std::int32_t cells, double end_time) {
  mesh::Grid grid(cells, 1);
  std::vector<mesh::Material> materials(static_cast<std::size_t>(cells),
                                        mesh::Material::kFoam);
  const mesh::InputDeck deck("sod", grid, std::move(materials),
                             mesh::Point{0.0, 0.5});
  HydroState state(deck);
  const std::int32_t half = cells / 2;
  for (std::int32_t i = 0; i < cells; ++i) {
    const auto c = static_cast<std::size_t>(i);
    const double rho = (i < half) ? 1.0 : 0.125;
    const double p = (i < half) ? 1.0 : 0.1;
    state.density[c] = rho;
    state.cell_mass[c] = rho * state.cell_volume[c];
    state.specific_energy[c] = p / ((kGamma - 1.0) * rho);
    state.pressure[c] = p;
  }
  state.update_node_masses();

  HydroConfig config;
  config.enable_burn = false;
  config.reflecting_boundaries = true;
  config.cfl = 0.2;
  config.max_dt = 0.01;
  HydroSolver solver(state, config);
  (void)solver.run_until(end_time, 200000);
  return state;
}

/// Spatial center of a (possibly moved) cell — the mesh is Lagrangian,
/// so cell indices are material coordinates, not positions.
double cell_center_x(const HydroState& state, std::int32_t i) {
  const auto nodes =
      state.grid().nodes_of_cell(state.grid().cell_at(i, 0));
  double x = 0.0;
  for (mesh::NodeId n : nodes) x += state.node_x[static_cast<std::size_t>(n)];
  return x / 4.0;
}

TEST(SodShockTube, ShockPositionMatchesExactSolution) {
  constexpr std::int32_t kCells = 200;
  constexpr double kTime = 25.0;
  const HydroState state = run_sod(kCells, kTime);
  // The shock front: the rightmost cell (in space) clearly above the
  // ambient right-state density.
  double shock_x = 0.0;
  for (std::int32_t i = 0; i < kCells; ++i) {
    if (state.density[static_cast<std::size_t>(i)] > 0.15) {
      shock_x = std::max(shock_x, cell_center_x(state, i));
    }
  }
  const double exact = kCells / 2.0 + kExactShockSpeed * kTime;
  EXPECT_NEAR(shock_x, exact, 3.0);
}

TEST(SodShockTube, PostShockPlateauMatchesStarState) {
  const HydroState state = run_sod(200, 25.0);
  // Sample the plateau between the contact (~123) and the shock (~144).
  for (std::int32_t i = 130; i <= 138; ++i) {
    const auto c = static_cast<std::size_t>(i);
    EXPECT_NEAR(state.density[c], kExactRhoStarR, 0.02) << "cell " << i;
    EXPECT_NEAR(state.pressure[c], kExactPStar, 0.02) << "cell " << i;
  }
}

TEST(SodShockTube, ContactSeparatesTheTwoPlateauDensities) {
  const HydroState state = run_sod(200, 25.0);
  // In a Lagrangian mesh the contact IS the material interface: the
  // boundary between cells 99 and 100. Left of it the star state is
  // rho*L at p*; the interface itself must sit at the exact contact
  // position x0 + u* t.
  for (std::int32_t i = 90; i <= 97; ++i) {
    const auto c = static_cast<std::size_t>(i);
    EXPECT_NEAR(state.density[c], kExactRhoStarL, 0.04) << "cell " << i;
    EXPECT_NEAR(state.pressure[c], kExactPStar, 0.02) << "cell " << i;
  }
  const double contact_exact = 100.0 + kExactContactSpeed * 25.0;
  const double interface_x =
      state.node_x[static_cast<std::size_t>(state.grid().node_at(100, 0))];
  EXPECT_NEAR(interface_x, contact_exact, 2.0);
}

TEST(SodShockTube, UndisturbedStatesPreserved) {
  const HydroState state = run_sod(200, 25.0);
  // Ahead of the shock (right end) and behind the rarefaction tail the
  // initial states must be untouched.
  for (std::int32_t i = 190; i < 200; ++i) {
    EXPECT_NEAR(state.density[static_cast<std::size_t>(i)], 0.125, 1e-3);
  }
  for (std::int32_t i = 2; i < 30; ++i) {
    EXPECT_NEAR(state.density[static_cast<std::size_t>(i)], 1.0, 5e-3);
    EXPECT_NEAR(state.pressure[static_cast<std::size_t>(i)], 1.0, 1e-2);
  }
}

TEST(SodShockTube, ResolutionConvergesTowardExactPlateau) {
  // The plateau error must not grow as the mesh refines (first-order
  // scheme: smeared interfaces, converging plateaus).
  const HydroState coarse = run_sod(100, 12.0);
  const HydroState fine = run_sod(400, 50.0);
  const auto plateau_error = [&](const HydroState& state, std::int32_t probe) {
    return std::abs(state.density[static_cast<std::size_t>(probe)] -
                    kExactRhoStarR);
  };
  // Probe mid-plateau in each resolution's (material) coordinates:
  // the shocked right-state cells start at the interface index.
  const double coarse_error = plateau_error(coarse, 60);
  const double fine_error = plateau_error(fine, 240);
  EXPECT_LE(fine_error, coarse_error + 0.01);
  EXPECT_LT(fine_error, 0.02);
}

}  // namespace
}  // namespace krak::hydro
