#include <gtest/gtest.h>

#include "hydro/solver.hpp"
#include "mesh/deck.hpp"
#include "util/error.hpp"

namespace krak::hydro {
namespace {

using mesh::Material;

/// Run `steps` steps at the given thread count and return the state.
HydroState run_steps(const mesh::InputDeck& deck, std::int32_t threads,
                     int steps) {
  HydroState state(deck);
  HydroConfig config;
  config.threads = threads;
  HydroSolver solver(state, config);
  for (int s = 0; s < steps; ++s) (void)solver.step();
  return state;
}

class ThreadCountTest : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(ThreadCountTest, BitwiseIdenticalToSerial) {
  // The whole point of the gather formulation: any thread count
  // reproduces the serial run exactly, field by field.
  const mesh::InputDeck deck = mesh::make_cylindrical_deck(96, 48);
  const HydroState serial = run_steps(deck, 1, 12);
  const HydroState parallel = run_steps(deck, GetParam(), 12);
  EXPECT_EQ(serial.node_x, parallel.node_x);
  EXPECT_EQ(serial.node_y, parallel.node_y);
  EXPECT_EQ(serial.velocity_x, parallel.velocity_x);
  EXPECT_EQ(serial.velocity_y, parallel.velocity_y);
  EXPECT_EQ(serial.specific_energy, parallel.specific_energy);
  EXPECT_EQ(serial.pressure, parallel.pressure);
  EXPECT_EQ(serial.cell_volume, parallel.cell_volume);
  EXPECT_DOUBLE_EQ(serial.time, parallel.time);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountTest,
                         ::testing::Values(2, 3, 4, 8));

TEST(HydroParallel, ThreadCountValidated) {
  const mesh::InputDeck deck = mesh::make_uniform_deck(4, 4, Material::kFoam);
  HydroState state(deck);
  HydroConfig config;
  config.threads = 0;
  EXPECT_THROW(HydroSolver(state, config), util::InvalidArgument);
}

TEST(HydroParallel, SmallGridsSkipTheForkJoin) {
  // Grids below the chunking threshold run inline; results must still
  // be correct and the pool unused path exercised.
  const mesh::InputDeck deck = mesh::make_uniform_deck(8, 8, Material::kFoam);
  const HydroState serial = run_steps(deck, 1, 5);
  const HydroState parallel = run_steps(deck, 4, 5);
  EXPECT_EQ(serial.specific_energy, parallel.specific_energy);
}

TEST(HydroParallel, MassConservedUnderThreads) {
  const mesh::InputDeck deck = mesh::make_cylindrical_deck(64, 32);
  HydroState state(deck);
  const double mass0 = state.total_mass();
  HydroConfig config;
  config.threads = 4;
  HydroSolver solver(state, config);
  (void)solver.run_until(0.5, 1000);
  EXPECT_DOUBLE_EQ(state.total_mass(), mass0);
}

}  // namespace
}  // namespace krak::hydro
