#include "util/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace krak::util {
namespace {

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(check(true, "never shown"));
}

TEST(Check, FailingConditionThrowsInvalidArgument) {
  EXPECT_THROW(check(false, "boom"), InvalidArgument);
}

TEST(Check, MessageContainsTextAndLocation) {
  try {
    check(false, "my precondition text");
    FAIL() << "check did not throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("my precondition text"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(RequireInternal, ThrowsInternalError) {
  EXPECT_NO_THROW(require_internal(true, "fine"));
  EXPECT_THROW(require_internal(false, "bug"), InternalError);
}

TEST(Hierarchy, AllErrorsAreKrakErrors) {
  // Catching KrakError must cover both flavors so sweep drivers can use
  // one handler.
  bool caught = false;
  try {
    check(false, "x");
  } catch (const KrakError&) {
    caught = true;
  }
  EXPECT_TRUE(caught);

  caught = false;
  try {
    require_internal(false, "y");
  } catch (const KrakError&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
}

TEST(FormatLocation, MentionsFileAndFunction) {
  const auto loc = std::source_location::current();
  const std::string formatted = format_location(loc);
  EXPECT_NE(formatted.find("error_test.cpp"), std::string::npos);
}

}  // namespace
}  // namespace krak::util
