#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace krak::util {
namespace {

TEST(ThreadPool, DefaultHasAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SubmitRejectsEmptyCallable) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), InvalidArgument);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&ran](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleIndex) {
  ThreadPool pool(4);
  std::atomic<int> value{0};
  pool.parallel_for(1, [&value](std::size_t i) {
    value = static_cast<int>(i) + 7;
  });
  EXPECT_EQ(value.load(), 7);
}

TEST(ThreadPool, ParallelForActuallyRunsConcurrently) {
  // With 4 workers and 4 tasks of ~30ms each, the wall time should be
  // well under the 120ms serial time.
  ThreadPool pool(4);
  const Stopwatch watch;
  pool.parallel_for(4, [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  });
  EXPECT_LT(watch.seconds(), 0.110);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.submit([&counter] { counter.fetch_add(10); });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  // Regression: a KrakError escaping a worker used to hit the raw task
  // wrapper and std::terminate the whole process.
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   8,
                   [](std::size_t i) {
                     if (i == 3) throw KrakError("poisoned index");
                   }),
               KrakError);
}

TEST(ThreadPool, ParallelForRethrowsFirstExceptionWithMessage) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(4, [](std::size_t i) {
      if (i == 1) throw InvalidArgument("index 1 rejected");
    });
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("index 1 rejected"),
              std::string::npos);
  }
}

TEST(ThreadPool, ParallelForStopsClaimingAfterFailure) {
  // After the failure is observed, unclaimed indices are skipped — the
  // executed count stays well below the total.
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  constexpr std::size_t kCount = 100000;
  EXPECT_THROW(pool.parallel_for(kCount,
                                 [&executed](std::size_t i) {
                                   executed.fetch_add(1);
                                   if (i == 0) {
                                     throw KrakError("early failure");
                                   }
                                 }),
               KrakError);
  EXPECT_LT(executed.load(), static_cast<int>(kCount));
}

TEST(ThreadPool, PoolIsReusableAfterParallelForFailure) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(4, [](std::size_t) { throw KrakError("boom"); }),
      KrakError);
  std::atomic<int> counter{0};
  pool.parallel_for(16, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPool, ChunkedCoversEveryIndexExactlyOnceAcrossGrains) {
  ThreadPool pool(8);
  constexpr std::size_t kCount = 10000;
  for (const std::size_t grain : {1u, 7u, 64u, 4096u}) {
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallel_for_chunked(kCount, grain,
                              [&hits](std::size_t begin, std::size_t end) {
                                for (std::size_t i = begin; i < end; ++i) {
                                  hits[i].fetch_add(1);
                                }
                              });
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "grain " << grain << " index " << i;
    }
  }
}

TEST(ThreadPool, ChunkedRespectsGrainBound) {
  ThreadPool pool(4);
  std::atomic<std::size_t> max_chunk{0};
  std::atomic<std::size_t> chunks{0};
  pool.parallel_for_chunked(1000, 128,
                            [&](std::size_t begin, std::size_t end) {
                              chunks.fetch_add(1);
                              std::size_t size = end - begin;
                              std::size_t seen = max_chunk.load();
                              while (size > seen &&
                                     !max_chunk.compare_exchange_weak(seen,
                                                                      size)) {
                              }
                            });
  EXPECT_LE(max_chunk.load(), 128u);
  // 1000 / 128 -> 7 full chunks plus one remainder of 104.
  EXPECT_GE(chunks.load(), 8u);
}

TEST(ThreadPool, ChunkedGrainLargerThanCountIsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  std::atomic<std::size_t> covered{0};
  pool.parallel_for_chunked(10, 1000,
                            [&](std::size_t begin, std::size_t end) {
                              chunks.fetch_add(1);
                              covered.fetch_add(end - begin);
                            });
  EXPECT_EQ(chunks.load(), 1);
  EXPECT_EQ(covered.load(), 10u);
}

TEST(ThreadPool, ChunkedZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for_chunked(0, 16, [&ran](std::size_t, std::size_t) {
    ran = true;
  });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ChunkedPropagatesFirstExceptionAndStopsClaiming) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  constexpr std::size_t kCount = 100000;
  try {
    pool.parallel_for_chunked(kCount, 16,
                              [&executed](std::size_t begin, std::size_t) {
                                executed.fetch_add(1);
                                if (begin == 0) {
                                  throw InvalidArgument("first chunk rejected");
                                }
                              });
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("first chunk rejected"),
              std::string::npos);
  }
  EXPECT_LT(executed.load(), static_cast<int>(kCount / 16));
}

TEST(ThreadPool, ChunkedIsReusableAfterFailure) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_chunked(
                   8, 2,
                   [](std::size_t, std::size_t) { throw KrakError("boom"); }),
               KrakError);
  std::atomic<std::size_t> covered{0};
  pool.parallel_for_chunked(64, 8,
                            [&covered](std::size_t begin, std::size_t end) {
                              covered.fetch_add(end - begin);
                            });
  EXPECT_EQ(covered.load(), 64u);
}

TEST(ThreadPool, ParallelForAccumulatesCorrectSum) {
  ThreadPool pool(8);
  constexpr std::size_t kCount = 1000;
  std::vector<long> results(kCount, 0);
  pool.parallel_for(kCount, [&results](std::size_t i) {
    results[i] = static_cast<long>(i) * 2;
  });
  const long sum = std::accumulate(results.begin(), results.end(), 0L);
  EXPECT_EQ(sum, static_cast<long>(kCount) * (kCount - 1));
}

}  // namespace
}  // namespace krak::util
