#include "util/cancellation.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace krak::util {
namespace {

TEST(CancellationToken, FreshTokenIsNotExpired) {
  CancellationToken token;
  EXPECT_FALSE(token.expired());
  EXPECT_EQ(token.reason(), "");
  EXPECT_NO_THROW(CancellationToken::check(&token, "checkpoint"));
}

TEST(CancellationToken, NullTokenCheckIsANoOp) {
  EXPECT_NO_THROW(CancellationToken::check(nullptr, "checkpoint"));
}

TEST(CancellationToken, ExplicitCancelTripsAndFirstReasonWins) {
  CancellationToken token;
  token.cancel("operator abort");
  token.cancel("second reason");
  EXPECT_TRUE(token.expired());
  EXPECT_EQ(token.reason(), "operator abort");
  try {
    CancellationToken::check(&token, "scenario");
    FAIL() << "check must throw once the token is cancelled";
  } catch (const CancelledError& error) {
    EXPECT_NE(std::string(error.what()).find("scenario"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("operator abort"),
              std::string::npos);
  }
}

TEST(CancellationToken, DeadlineExpiresAndNamesTheBudget) {
  CancellationToken token;
  token.arm_deadline(1e-4);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(token.expired());
  EXPECT_NE(token.reason().find("wall deadline"), std::string::npos);
  EXPECT_THROW(CancellationToken::check(&token, "attempt"), CancelledError);
}

TEST(CancellationToken, ArmDeadlineRestartsTheBudgetClock) {
  CancellationToken token;
  token.arm_deadline(1e-4);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(token.expired());
  // Re-arming grants a fresh budget; disarming (<= 0) clears it.
  token.arm_deadline(60.0);
  EXPECT_FALSE(token.expired());
  token.arm_deadline(0.0);
  EXPECT_FALSE(token.expired());
}

TEST(CancellationToken, ChildExpiresWithItsParent) {
  CancellationToken parent;
  CancellationToken child;
  child.set_parent(&parent);
  EXPECT_FALSE(child.expired());
  parent.cancel("campaign deadline");
  EXPECT_TRUE(child.expired());
  EXPECT_EQ(child.reason(), "campaign deadline");
  child.set_parent(nullptr);
  EXPECT_FALSE(child.expired());
}

TEST(CancellationToken, ChildExpiryDoesNotTripTheParent) {
  CancellationToken parent;
  CancellationToken child;
  child.set_parent(&parent);
  child.cancel("scenario budget");
  EXPECT_TRUE(child.expired());
  EXPECT_FALSE(parent.expired());
}

TEST(CancelledError, IsAKrakError) {
  // Campaign catch sites classify through the KrakError hierarchy.
  const CancelledError error("cancelled");
  EXPECT_NE(dynamic_cast<const KrakError*>(&error), nullptr);
}

}  // namespace
}  // namespace krak::util
