#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/error.hpp"

namespace krak::util {
namespace {

namespace fs = std::filesystem;

class AtomicFileTest : public ::testing::Test {
 protected:
  AtomicFileTest()
      : directory_(fs::path(::testing::TempDir()) /
                   ("krak_atomic_file_" +
                    std::string(::testing::UnitTest::GetInstance()
                                    ->current_test_info()
                                    ->name()))) {
    fs::remove_all(directory_);
    fs::create_directories(directory_);
  }

  ~AtomicFileTest() override {
    std::error_code ec;
    fs::remove_all(directory_, ec);
  }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  fs::path directory_;
};

TEST_F(AtomicFileTest, WritesContentAndLeavesNoTempFile) {
  const fs::path target = directory_ / "report.json";
  atomic_write_file(target, "{\"ok\": true}\n");
  EXPECT_EQ(slurp(target), "{\"ok\": true}\n");
  EXPECT_FALSE(fs::exists(directory_ / "report.json.tmp"));
}

TEST_F(AtomicFileTest, ReplacesAnExistingFileWholly) {
  const fs::path target = directory_ / "report.json";
  atomic_write_file(target, "first version, deliberately longer than the next");
  atomic_write_file(target, "v2");
  // Rename semantics: the new content fully replaces the old, no
  // truncated hybrid of the two.
  EXPECT_EQ(slurp(target), "v2");
}

TEST_F(AtomicFileTest, EmptyContentYieldsAnEmptyFile) {
  const fs::path target = directory_ / "empty.txt";
  atomic_write_file(target, "");
  EXPECT_TRUE(fs::exists(target));
  EXPECT_EQ(fs::file_size(target), 0u);
}

TEST_F(AtomicFileTest, UnwritableTargetThrowsAndCleansUp) {
  const fs::path target = directory_ / "no_such_dir" / "report.json";
  EXPECT_THROW(atomic_write_file(target, "x"), KrakError);
  EXPECT_FALSE(fs::exists(directory_ / "no_such_dir"));
}

TEST_F(AtomicFileTest, OrphanSweepRemovesOnlyTempFiles) {
  std::ofstream(directory_ / "entry.krakpart") << "keep";
  std::ofstream(directory_ / "entry.krakpart.tmp") << "orphan";
  std::ofstream(directory_ / "other.tmp") << "orphan";
  fs::create_directories(directory_ / "subdir.tmp");  // not a regular file

  EXPECT_EQ(remove_orphan_temp_files(directory_), 2u);
  EXPECT_TRUE(fs::exists(directory_ / "entry.krakpart"));
  EXPECT_TRUE(fs::exists(directory_ / "subdir.tmp"));
  EXPECT_FALSE(fs::exists(directory_ / "entry.krakpart.tmp"));
  EXPECT_FALSE(fs::exists(directory_ / "other.tmp"));
  // Idempotent: a second sweep finds nothing.
  EXPECT_EQ(remove_orphan_temp_files(directory_), 0u);
}

TEST_F(AtomicFileTest, OrphanSweepToleratesAMissingDirectory) {
  EXPECT_EQ(remove_orphan_temp_files(directory_ / "never_created"), 0u);
}

}  // namespace
}  // namespace krak::util
