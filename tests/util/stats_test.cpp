#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace krak::util {
namespace {

TEST(OnlineStats, EmptyThrowsOnQueries) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW((void)s.mean(), InvalidArgument);
  EXPECT_THROW((void)s.min(), InvalidArgument);
  EXPECT_THROW((void)s.max(), InvalidArgument);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic data set: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10.0 + i;
    all.add(v);
    (i < 37 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats a;
  a.add(1.0);
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(FitLine, RecoversExactLine) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {3.0, 5.0, 7.0, 9.0};
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyDataHasLowerRSquared) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = {2.9, 5.4, 6.6, 9.3, 10.8};
  const LinearFit fit = fit_line(x, y);
  EXPECT_GT(fit.r_squared, 0.95);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_NEAR(fit.slope, 2.0, 0.2);
}

TEST(FitLine, RejectsDegenerateInput) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW((void)fit_line(one, one), InvalidArgument);
  const std::vector<double> constant_x = {2.0, 2.0};
  const std::vector<double> y = {1.0, 3.0};
  EXPECT_THROW((void)fit_line(constant_x, y), InvalidArgument);
  const std::vector<double> x = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)fit_line(x, y), InvalidArgument);
}

TEST(Errors, PaperConventionSign) {
  // Paper convention: (measured - predicted) / measured. Over-prediction
  // is negative (Table 6's -8.0% rows are predictions above measurement).
  EXPECT_DOUBLE_EQ(paper_error(100.0, 108.0), -0.08);
  EXPECT_DOUBLE_EQ(paper_error(100.0, 90.0), 0.10);
  EXPECT_DOUBLE_EQ(relative_error(100.0, 108.0), 0.08);
  EXPECT_THROW((void)paper_error(0.0, 1.0), InvalidArgument);
}

TEST(Percentile, EndpointsAndMedian) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 10.0), 1.0);
}

TEST(Percentile, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile(empty, 50.0), InvalidArgument);
  const std::vector<double> v = {1.0};
  EXPECT_THROW((void)percentile(v, -1.0), InvalidArgument);
  EXPECT_THROW((void)percentile(v, 101.0), InvalidArgument);
}

TEST(Mean, SimpleAndEmpty) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.0);
  const std::vector<double> empty;
  EXPECT_THROW((void)mean(empty), InvalidArgument);
}

TEST(GeometricMean, KnownValueAndGuards) {
  const std::vector<double> v = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(v), 4.0, 1e-12);
  const std::vector<double> with_zero = {1.0, 0.0};
  EXPECT_THROW((void)geometric_mean(with_zero), InvalidArgument);
}

TEST(KahanSum, CompensatesSmallAddends) {
  // 1 + 1e-16 * 10000: naive double accumulation loses the tail.
  std::vector<double> v = {1.0};
  v.insert(v.end(), 10000, 1e-16);
  EXPECT_NEAR(kahan_sum(v), 1.0 + 1e-12, 1e-15);
}

}  // namespace
}  // namespace krak::util
