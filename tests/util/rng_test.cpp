#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace krak::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, NextDoubleRangeRejectsInvertedBounds) {
  Rng rng(7);
  EXPECT_THROW((void)rng.next_double(5.0, -3.0), InvalidArgument);
}

TEST(Rng, NextBelowStaysBelowBound) {
  Rng rng(99);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(1);
  EXPECT_THROW((void)rng.next_below(0), InvalidArgument);
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformMeanIsNearHalf) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.next_double());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.next_normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ScaledNormalMomentsMatch) {
  Rng rng(17);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.next_normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(1);
  EXPECT_THROW((void)rng.next_normal(0.0, -1.0), InvalidArgument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.split();
  // The child must not replay the parent's future outputs.
  std::vector<std::uint64_t> parent_values;
  std::vector<std::uint64_t> child_values;
  for (int i = 0; i < 32; ++i) {
    parent_values.push_back(parent.next_u64());
    child_values.push_back(child.next_u64());
  }
  EXPECT_NE(parent_values, child_values);
}

TEST(Rng, WorksWithStdShuffleDeterministically) {
  std::vector<int> a(100);
  std::vector<int> b(100);
  for (int i = 0; i < 100; ++i) a[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(i)] = i;
  Rng ra(5);
  Rng rb(5);
  std::shuffle(a.begin(), a.end(), ra);
  std::shuffle(b.begin(), b.end(), rb);
  EXPECT_EQ(a, b);
  // And it actually permutes.
  std::vector<int> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NE(a, sorted);
}

/// The low bits of xoshiro256** should not be degenerate.
TEST(Rng, LowBitsAreBalanced) {
  Rng rng(3);
  int ones = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) ones += static_cast<int>(rng.next_u64() & 1u);
  EXPECT_GT(ones, kSamples * 45 / 100);
  EXPECT_LT(ones, kSamples * 55 / 100);
}

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweepTest, EverySeedYieldsDistinctValuesQuickly) {
  Rng rng(GetParam());
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(rng.next_u64());
  EXPECT_EQ(seen.size(), 64u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(0ull, 1ull, 2ull, 42ull, 2006ull,
                                           0xdeadbeefull, ~0ull));

}  // namespace
}  // namespace krak::util
