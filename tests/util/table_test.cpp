#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace krak::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"Name", "Value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Box rules present.
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(TextTable, ColumnsPadToWidestCell) {
  TextTable table({"H"});
  table.add_row({"wide-cell-content"});
  const std::string out = table.to_string();
  // Every line should have the same length.
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable table({"A", "B"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgument);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), InvalidArgument);
}

TEST(TextTable, LeftAlignmentPadsRight) {
  TextTable table({"Col"});
  table.set_alignment({Align::kLeft});
  table.add_row({"x"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| x   |"), std::string::npos);
}

TEST(TextTable, RightAlignmentPadsLeft) {
  TextTable table({"Col"});
  table.add_row({"x"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("|   x |"), std::string::npos);
}

TEST(TextTable, RuleInsertsSeparator) {
  TextTable table({"A"});
  table.add_row({"1"});
  table.add_rule();
  table.add_row({"2"});
  const std::string out = table.to_string();
  // header rule + top + bottom + mid-rule = 4 separator lines.
  std::size_t rules = 0;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TextTable, StreamOperatorMatchesToString) {
  TextTable table({"A"});
  table.add_row({"1"});
  std::ostringstream os;
  os << table;
  EXPECT_EQ(os.str(), table.to_string());
}

TEST(Format, Double) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

TEST(Format, Milliseconds) {
  EXPECT_EQ(format_ms(0.0615, 1), "61.5 ms");
  EXPECT_EQ(format_ms(1.0, 0), "1000 ms");
}

TEST(Format, Microseconds) {
  EXPECT_EQ(format_us(4.5e-6, 2), "4.50 us");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(-0.08, 1), "-8.0%");
  EXPECT_EQ(format_percent(0.029, 1), "2.9%");
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(120.0), "120 B");
  EXPECT_EQ(format_bytes(2048.0), "2.0 KiB");
  EXPECT_EQ(format_bytes(3.0 * 1024 * 1024), "3.00 MiB");
}

}  // namespace
}  // namespace krak::util
