// Thread-pool stress tests, written to give TSan (KRAK_SANITIZE=thread)
// real contention to chew on: concurrent submitters racing wait_idle,
// overlapping parallel_for calls from separate threads, and
// construction/destruction churn with work still queued.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace krak::util {
namespace {

TEST(ThreadPoolStress, ConcurrentSubmittersAndWaiters) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 500;

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
      }
      pool.wait_idle();
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStress, OverlappingParallelForFromTwoThreads) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 2000;
  std::vector<std::atomic<int>> first(kCount);
  std::vector<std::atomic<int>> second(kCount);

  std::thread a([&pool, &first] {
    pool.parallel_for(kCount, [&first](std::size_t i) {
      first[i].fetch_add(1);
    });
  });
  std::thread b([&pool, &second] {
    pool.parallel_for(kCount, [&second](std::size_t i) {
      second[i].fetch_add(1);
    });
  });
  a.join();
  b.join();
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(first[i].load(), 1) << "first, index " << i;
    ASSERT_EQ(second[i].load(), 1) << "second, index " << i;
  }
}

TEST(ThreadPoolStress, ConstructionDestructionChurnDrainsQueuedWork) {
  std::atomic<int> counter{0};
  constexpr int kRounds = 50;
  constexpr int kTasksPerRound = 64;
  for (int round = 0; round < kRounds; ++round) {
    ThreadPool pool(3);
    for (int i = 0; i < kTasksPerRound; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor must drain everything queued above
  EXPECT_EQ(counter.load(), kRounds * kTasksPerRound);
}

TEST(ThreadPoolStress, TaskChainsFanOutAndRejoin) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kRoots = 100;
  for (int i = 0; i < kRoots; ++i) {
    pool.submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.submit([&pool, &counter] {
        counter.fetch_add(1);
        pool.submit([&counter] { counter.fetch_add(1); });
      });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 3 * kRoots);
}

TEST(ThreadPoolStress, RepeatedWaitIdleBetweenBursts) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int burst = 0; burst < 200; ++burst) {
    for (int i = 0; i < 8; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    ASSERT_EQ(counter.load(), (burst + 1) * 8);
  }
}

}  // namespace
}  // namespace krak::util
