#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace krak::util {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, EmptyCommandLine) {
  const ArgParser args = parse({});
  EXPECT_EQ(args.program(), "prog");
  EXPECT_FALSE(args.has("anything"));
  EXPECT_TRUE(args.positional().empty());
  EXPECT_EQ(args.get_int("pes", 64), 64);
}

TEST(ArgParser, SpaceSeparatedValue) {
  const ArgParser args = parse({"--pes", "128"});
  EXPECT_TRUE(args.has("pes"));
  EXPECT_EQ(args.get_int("pes", 0), 128);
}

TEST(ArgParser, EqualsSeparatedValue) {
  const ArgParser args = parse({"--deck=large", "--noise=0.02"});
  EXPECT_EQ(args.get_string("deck", ""), "large");
  EXPECT_DOUBLE_EQ(args.get_double("noise", 0.0), 0.02);
}

TEST(ArgParser, BareFlag) {
  const ArgParser args = parse({"--verbose", "--pes", "4"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get_string("verbose", "x"), "");
  EXPECT_EQ(args.get_int("pes", 0), 4);
}

TEST(ArgParser, FlagFollowedByOptionIsBare) {
  const ArgParser args = parse({"--fast", "--pes", "8"});
  EXPECT_TRUE(args.has("fast"));
  EXPECT_EQ(args.get_int("pes", 0), 8);
}

TEST(ArgParser, PositionalArgumentsPreserved) {
  const ArgParser args = parse({"input.deck", "--pes", "2", "out.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.deck");
  EXPECT_EQ(args.positional()[1], "out.csv");
}

TEST(ArgParser, NegativeNumbersParse) {
  const ArgParser args = parse({"--offset=-5", "--scale=-1.5"});
  EXPECT_EQ(args.get_int("offset", 0), -5);
  EXPECT_DOUBLE_EQ(args.get_double("scale", 0.0), -1.5);
}

TEST(ArgParser, BadIntegerThrows) {
  const ArgParser args = parse({"--pes", "eight"});
  EXPECT_THROW((void)args.get_int("pes", 0), InvalidArgument);
}

TEST(ArgParser, TrailingGarbageThrows) {
  const ArgParser args = parse({"--pes", "8x"});
  EXPECT_THROW((void)args.get_int("pes", 0), InvalidArgument);
}

TEST(ArgParser, BadDoubleThrows) {
  const ArgParser args = parse({"--noise", "tiny"});
  EXPECT_THROW((void)args.get_double("noise", 0.0), InvalidArgument);
}

TEST(ArgParser, LastOccurrenceWins) {
  const ArgParser args = parse({"--pes", "4", "--pes", "16"});
  EXPECT_EQ(args.get_int("pes", 0), 16);
}

}  // namespace
}  // namespace krak::util
