#include "util/piecewise.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace krak::util {
namespace {

TEST(PiecewiseLinear, EmptyFunctionThrowsOnEvaluation) {
  PiecewiseLinear f;
  EXPECT_TRUE(f.empty());
  EXPECT_THROW((void)f(1.0), InvalidArgument);
}

TEST(PiecewiseLinear, SinglePointIsConstant) {
  PiecewiseLinear f;
  f.add_point(10.0, 3.5);
  EXPECT_DOUBLE_EQ(f(0.0), 3.5);
  EXPECT_DOUBLE_EQ(f(10.0), 3.5);
  EXPECT_DOUBLE_EQ(f(1e9), 3.5);
}

TEST(PiecewiseLinear, InterpolatesLinearlyBetweenBreakpoints) {
  const std::vector<double> xs = {0.0, 10.0};
  const std::vector<double> ys = {0.0, 100.0};
  const PiecewiseLinear f(xs, ys);
  EXPECT_DOUBLE_EQ(f(5.0), 50.0);
  EXPECT_DOUBLE_EQ(f(2.5), 25.0);
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f(10.0), 100.0);
}

TEST(PiecewiseLinear, ClampExtrapolationHoldsEndValues) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {10.0, 20.0};
  const PiecewiseLinear f(xs, ys, Interpolation::kLinear,
                          Extrapolation::kClamp);
  EXPECT_DOUBLE_EQ(f(0.0), 10.0);
  EXPECT_DOUBLE_EQ(f(3.0), 20.0);
}

TEST(PiecewiseLinear, LinearExtrapolationContinuesSlope) {
  const std::vector<double> xs = {1.0, 2.0, 4.0};
  const std::vector<double> ys = {10.0, 20.0, 20.0};
  const PiecewiseLinear f(xs, ys, Interpolation::kLinear,
                          Extrapolation::kLinear);
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);   // first segment slope 10
  EXPECT_DOUBLE_EQ(f(8.0), 20.0);  // last segment slope 0
}

TEST(PiecewiseLinear, LogXInterpolationIsLinearInLogSpace) {
  const std::vector<double> xs = {1.0, 100.0};
  const std::vector<double> ys = {0.0, 2.0};
  const PiecewiseLinear f(xs, ys, Interpolation::kLogX);
  // Halfway in log10 space: x = 10.
  EXPECT_NEAR(f(10.0), 1.0, 1e-12);
}

TEST(PiecewiseLinear, LogXRejectsNonPositiveInputs) {
  const std::vector<double> xs = {1.0, 100.0};
  const std::vector<double> ys = {0.0, 2.0};
  const PiecewiseLinear f(xs, ys, Interpolation::kLogX);
  EXPECT_THROW((void)f(0.0), InvalidArgument);
  EXPECT_THROW((void)f(-1.0), InvalidArgument);
}

TEST(PiecewiseLinear, LogXRejectsNonPositiveBreakpoints) {
  const std::vector<double> xs = {0.0, 1.0};
  const std::vector<double> ys = {0.0, 1.0};
  EXPECT_THROW(PiecewiseLinear(xs, ys, Interpolation::kLogX), InvalidArgument);
}

TEST(PiecewiseLinear, ModeAccessorsReportConfiguration) {
  PiecewiseLinear f;
  EXPECT_EQ(f.interpolation(), Interpolation::kLinear);
  EXPECT_EQ(f.extrapolation(), Extrapolation::kClamp);
  f.set_interpolation(Interpolation::kLogX);
  f.set_extrapolation(Extrapolation::kLinear);
  EXPECT_EQ(f.interpolation(), Interpolation::kLogX);
  EXPECT_EQ(f.extrapolation(), Extrapolation::kLinear);

  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0, 4.0};
  const PiecewiseLinear g(xs, ys, Interpolation::kLogX,
                          Extrapolation::kLinear);
  EXPECT_EQ(g.interpolation(), Interpolation::kLogX);
  EXPECT_EQ(g.extrapolation(), Extrapolation::kLinear);
}

TEST(PiecewiseLinear, AccessorsRoundTripThroughConstructor) {
  // Rebuilding from xs()/ys() plus the mode accessors reproduces the
  // function everywhere — the contract MessageCostModel::scaled relies
  // on.
  const std::vector<double> xs = {1.0, 10.0, 100.0};
  const std::vector<double> ys = {5.0, 3.0, 2.0};
  const PiecewiseLinear f(xs, ys, Interpolation::kLogX,
                          Extrapolation::kLinear);
  const PiecewiseLinear g(f.xs(), f.ys(), f.interpolation(),
                          f.extrapolation());
  for (double x : {1.0, 3.0, 10.0, 42.0, 100.0, 1000.0}) {
    EXPECT_DOUBLE_EQ(g(x), f(x)) << "at " << x;
  }
}

TEST(PiecewiseLinear, AddPointKeepsSortedOrder) {
  PiecewiseLinear f;
  f.add_point(10.0, 1.0);
  f.add_point(1.0, 5.0);
  f.add_point(5.0, 3.0);
  EXPECT_EQ(f.size(), 3u);
  EXPECT_DOUBLE_EQ(f.x_min(), 1.0);
  EXPECT_DOUBLE_EQ(f.x_max(), 10.0);
  EXPECT_DOUBLE_EQ(f(5.0), 3.0);
}

TEST(PiecewiseLinear, DuplicateXReplacesY) {
  PiecewiseLinear f;
  f.add_point(1.0, 5.0);
  f.add_point(1.0, 7.0);
  EXPECT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f(1.0), 7.0);
}

TEST(PiecewiseLinear, ConstructorRejectsUnsortedBreakpoints) {
  const std::vector<double> xs = {2.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0};
  EXPECT_THROW(PiecewiseLinear(xs, ys), InvalidArgument);
}

TEST(PiecewiseLinear, ConstructorRejectsLengthMismatch) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW(PiecewiseLinear(xs, ys), InvalidArgument);
}

TEST(PiecewiseLinear, IsNonDecreasingDetectsMonotonicity) {
  PiecewiseLinear up;
  up.add_point(1.0, 1.0);
  up.add_point(2.0, 1.0);
  up.add_point(3.0, 2.0);
  EXPECT_TRUE(up.is_non_decreasing());

  PiecewiseLinear down;
  down.add_point(1.0, 2.0);
  down.add_point(2.0, 1.0);
  EXPECT_FALSE(down.is_non_decreasing());
}

/// Property sweep: interpolation of a convex function over-estimates,
/// which is the mathematical root of the paper's knee error.
class ConvexInterpolationTest : public ::testing::TestWithParam<double> {};

TEST_P(ConvexInterpolationTest, LinearInterpolationOverestimatesConvex) {
  // f(n) = 1/n sampled at powers of two, queried between samples.
  PiecewiseLinear f;
  for (double x = 1.0; x <= 1024.0; x *= 2.0) f.add_point(x, 1.0 / x);
  const double x = GetParam();
  EXPECT_GE(f(x), 1.0 / x);
}

INSTANTIATE_TEST_SUITE_P(MidpointQueries, ConvexInterpolationTest,
                         ::testing::Values(1.5, 3.0, 6.0, 12.0, 24.0, 48.0,
                                           96.0, 192.0, 384.0, 768.0));

/// Interpolation must stay within the bracketing sample values.
class BoundednessTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(BoundednessTest, InterpolantBoundedBySamples) {
  PiecewiseLinear f;
  f.add_point(1.0, 2.0);
  f.add_point(10.0, 8.0);
  f.add_point(100.0, 4.0);
  const auto [x, unused] = GetParam();
  (void)unused;
  const double y = f(x);
  EXPECT_GE(y, 2.0);
  EXPECT_LE(y, 8.0);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, BoundednessTest,
    ::testing::Values(std::pair{0.5, 0.0}, std::pair{1.0, 0.0},
                      std::pair{3.0, 0.0}, std::pair{10.0, 0.0},
                      std::pair{55.0, 0.0}, std::pair{100.0, 0.0},
                      std::pair{1e6, 0.0}));

}  // namespace
}  // namespace krak::util
