#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace krak::util {
namespace {

/// RAII temp file path under the build tree.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string contents() const {
    std::ifstream in(path_);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

 private:
  std::string path_;
};

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("1.5"), "1.5");
}

TEST(CsvEscape, CommaTriggersQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuotesAreDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineTriggersQuoting) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  TempFile file("csv_basic.csv");
  {
    CsvWriter writer(file.path());
    writer.write_header({"pes", "time"});
    writer.write_row({std::vector<std::string>{"16", "0.027"}});
    writer.write_row({std::vector<std::string>{"64", "0.088"}});
    EXPECT_EQ(writer.rows_written(), 2u);
  }
  EXPECT_EQ(file.contents(), "pes,time\n16,0.027\n64,0.088\n");
}

TEST(CsvWriter, DoubleRowsUseFullPrecision) {
  TempFile file("csv_doubles.csv");
  {
    CsvWriter writer(file.path());
    writer.write_row(std::vector<double>{0.5, 1.0 / 3.0});
  }
  const std::string contents = file.contents();
  EXPECT_NE(contents.find("0.5"), std::string::npos);
  EXPECT_NE(contents.find("0.3333333333333"), std::string::npos);
}

TEST(CsvWriter, RowWidthEnforcedAfterHeader) {
  TempFile file("csv_width.csv");
  CsvWriter writer(file.path());
  writer.write_header({"a", "b"});
  EXPECT_THROW(writer.write_row({std::vector<std::string>{"only"}}),
               InvalidArgument);
}

TEST(CsvWriter, SecondHeaderRejected) {
  TempFile file("csv_hdr2.csv");
  CsvWriter writer(file.path());
  writer.write_header({"a"});
  EXPECT_THROW(writer.write_header({"b"}), InvalidArgument);
}

TEST(CsvWriter, HeaderAfterRowsRejected) {
  TempFile file("csv_hdr_late.csv");
  CsvWriter writer(file.path());
  writer.write_row({std::vector<std::string>{"1"}});
  EXPECT_THROW(writer.write_header({"a"}), InvalidArgument);
}

TEST(CsvWriter, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), KrakError);
}

}  // namespace
}  // namespace krak::util
