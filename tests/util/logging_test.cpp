#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace krak::util {
namespace {

/// The logger is a process-wide singleton; each test redirects the sink
/// and restores defaults afterwards.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::global().set_sink(&sink_);
    Logger::global().set_level(LogLevel::kDebug);
  }
  void TearDown() override {
    Logger::global().set_sink(nullptr);
    Logger::global().set_level(LogLevel::kInfo);
  }
  std::ostringstream sink_;
};

TEST_F(LoggingTest, WritesTaggedLine) {
  log_info("hello ", 42);
  EXPECT_EQ(sink_.str(), "[info] hello 42\n");
}

TEST_F(LoggingTest, LevelFilteringDropsLowerLevels) {
  Logger::global().set_level(LogLevel::kWarn);
  log_debug("dropped");
  log_info("dropped too");
  log_warn("kept");
  log_error("kept too");
  const std::string out = sink_.str();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("[warn] kept"), std::string::npos);
  EXPECT_NE(out.find("[error] kept too"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::global().set_level(LogLevel::kOff);
  log_error("nope");
  EXPECT_TRUE(sink_.str().empty());
}

TEST_F(LoggingTest, MultipleArgumentsAreConcatenated) {
  log_info("a=", 1, " b=", 2.5, " c=", "three");
  EXPECT_EQ(sink_.str(), "[info] a=1 b=2.5 c=three\n");
}

TEST(ParseLogLevel, AcceptsAllNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
}

TEST(ParseLogLevel, RejectsUnknownName) {
  EXPECT_THROW((void)parse_log_level("verbose"), InvalidArgument);
}

TEST(LogLevelName, RoundTripsThroughParse) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    EXPECT_EQ(parse_log_level(log_level_name(level)), level);
  }
}

}  // namespace
}  // namespace krak::util
