#include "util/units.hpp"

#include <gtest/gtest.h>

namespace krak::util {
namespace {

TEST(Units, TimeLiterals) {
  EXPECT_DOUBLE_EQ(seconds(2.0), 2.0);
  EXPECT_DOUBLE_EQ(milliseconds(61.0), 0.061);
  EXPECT_DOUBLE_EQ(microseconds(4.5), 4.5e-6);
  EXPECT_DOUBLE_EQ(nanoseconds(3.28), 3.28e-9);
}

TEST(Units, BandwidthLiterals) {
  EXPECT_DOUBLE_EQ(mb_per_second(300.0), 3e8);
  EXPECT_DOUBLE_EQ(mib_per_second(1.0), 1048576.0);
}

TEST(Units, ByteLiterals) {
  EXPECT_EQ(kib(2), 2048u);
  EXPECT_EQ(mib(3), 3u * 1024 * 1024);
}

TEST(Units, ConstexprUsable) {
  // The helpers are constexpr; equality up to one ulp of the scaling.
  constexpr double latency = microseconds(5.0);
  static_assert(latency > 4.9e-6 && latency < 5.1e-6);
  SUCCEED();
}

}  // namespace
}  // namespace krak::util
