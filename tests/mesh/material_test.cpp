#include "mesh/material.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace krak::mesh {
namespace {

TEST(Material, IndexRoundTrip) {
  for (std::size_t i = 0; i < kMaterialCount; ++i) {
    EXPECT_EQ(material_index(material_from_index(i)), i);
  }
}

TEST(Material, FromIndexRejectsOutOfRange) {
  EXPECT_THROW((void)material_from_index(kMaterialCount),
               util::InvalidArgument);
}

TEST(Material, AllMaterialsAreDistinctAndOrdered) {
  const auto materials = all_materials();
  EXPECT_EQ(materials.size(), kMaterialCount);
  EXPECT_EQ(materials[0], Material::kHEGas);
  EXPECT_EQ(materials[1], Material::kAluminumInner);
  EXPECT_EQ(materials[2], Material::kFoam);
  EXPECT_EQ(materials[3], Material::kAluminumOuter);
}

TEST(Material, NamesAreNonEmptyAndUnique) {
  for (Material m : all_materials()) {
    EXPECT_FALSE(material_name(m).empty());
    EXPECT_FALSE(material_short_name(m).empty());
  }
  EXPECT_NE(material_name(Material::kAluminumInner),
            material_name(Material::kAluminumOuter));
}

TEST(ExchangeGroup, AluminumLayersShareOneGroup) {
  // Section 4.1: "Identical materials (such as the two aluminum
  // materials in our input deck) are treated as one during boundary
  // exchanges."
  EXPECT_EQ(exchange_group(Material::kAluminumInner),
            exchange_group(Material::kAluminumOuter));
}

TEST(ExchangeGroup, OtherMaterialsAreDistinctGroups) {
  EXPECT_NE(exchange_group(Material::kHEGas), exchange_group(Material::kFoam));
  EXPECT_NE(exchange_group(Material::kHEGas),
            exchange_group(Material::kAluminumInner));
  EXPECT_NE(exchange_group(Material::kFoam),
            exchange_group(Material::kAluminumInner));
}

TEST(ExchangeGroup, GroupsAreDense) {
  bool seen[kExchangeGroupCount] = {};
  for (Material m : all_materials()) {
    const std::size_t g = exchange_group(m);
    ASSERT_LT(g, kExchangeGroupCount);
    seen[g] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(ExchangeGroup, NamesMatchTable3Labels) {
  EXPECT_EQ(exchange_group_name(exchange_group(Material::kHEGas)), "H.E. Gas");
  EXPECT_EQ(exchange_group_name(exchange_group(Material::kAluminumOuter)),
            "Aluminum (both)");
  EXPECT_EQ(exchange_group_name(exchange_group(Material::kFoam)), "Foam");
  EXPECT_THROW((void)exchange_group_name(kExchangeGroupCount),
               util::InvalidArgument);
}

}  // namespace
}  // namespace krak::mesh
