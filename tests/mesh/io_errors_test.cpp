// Hardened file-open paths: a missing or truncated deck file must be a
// one-line diagnosis naming the path and the cause (docs/RESILIENCE.md).

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "mesh/deck.hpp"
#include "mesh/io.hpp"
#include "util/error.hpp"

namespace krak::mesh {
namespace {

std::string load_error(const std::string& path) {
  try {
    (void)load_deck(path);
  } catch (const util::KrakError& error) {
    return error.what();
  }
  return {};
}

TEST(DeckIoErrors, MissingFileNamesPathAndOsCause) {
  const std::string path = "/nonexistent/dir/deck.krakdeck";
  const std::string what = load_error(path);
  ASSERT_FALSE(what.empty()) << "load_deck should have thrown";
  EXPECT_NE(what.find("load_deck"), std::string::npos) << what;
  EXPECT_NE(what.find(path), std::string::npos) << what;
  EXPECT_NE(what.find("No such file"), std::string::npos) << what;
}

TEST(DeckIoErrors, TruncatedFileNamesPathAndViolation) {
  const std::string path = ::testing::TempDir() + "/truncated.krakdeck";
  {
    std::ofstream out(path);
    out << "krakdeck 1\nname clipped\ngrid 4 4\nmaterials 3x0\n";  // no end
  }
  const std::string what = load_error(path);
  ASSERT_FALSE(what.empty()) << "load_deck should have thrown";
  EXPECT_NE(what.find(path), std::string::npos) << what;
  EXPECT_NE(what.find("malformed deck"), std::string::npos) << what;
}

TEST(DeckIoErrors, SaveIntoMissingDirectoryNamesPathAndOsCause) {
  const InputDeck deck = make_standard_deck(DeckSize::kSmall);
  const std::string path = "/nonexistent/dir/out.krakdeck";
  try {
    save_deck(path, deck);
    FAIL() << "expected KrakError";
  } catch (const util::KrakError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("save_deck"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("No such file"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace krak::mesh
