#include "mesh/grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace krak::mesh {
namespace {

TEST(Grid, CountsMatchFormulae) {
  const Grid g(4, 3);
  EXPECT_EQ(g.num_cells(), 12);
  EXPECT_EQ(g.num_nodes(), 5 * 4);
  // vertical: 5*3, horizontal: 4*4.
  EXPECT_EQ(g.num_faces(), 15 + 16);
}

TEST(Grid, RejectsNonPositiveDimensions) {
  EXPECT_THROW(Grid(0, 1), util::InvalidArgument);
  EXPECT_THROW(Grid(1, 0), util::InvalidArgument);
}

TEST(Grid, CellIndexRoundTrip) {
  const Grid g(7, 5);
  for (std::int32_t j = 0; j < 5; ++j) {
    for (std::int32_t i = 0; i < 7; ++i) {
      const CellId cell = g.cell_at(i, j);
      EXPECT_EQ(g.cell_i(cell), i);
      EXPECT_EQ(g.cell_j(cell), j);
    }
  }
  EXPECT_THROW((void)g.cell_at(7, 0), util::InvalidArgument);
  EXPECT_THROW((void)g.cell_at(0, 5), util::InvalidArgument);
  EXPECT_THROW((void)g.cell_at(-1, 0), util::InvalidArgument);
}

TEST(Grid, CellCenters) {
  const Grid g(2, 2);
  const Point c = g.cell_center(g.cell_at(1, 0));
  EXPECT_DOUBLE_EQ(c.x, 1.5);
  EXPECT_DOUBLE_EQ(c.y, 0.5);
}

TEST(Grid, CornerCellHasTwoNeighbors) {
  const Grid g(3, 3);
  EXPECT_EQ(g.neighbors_of_cell(g.cell_at(0, 0)).size(), 2u);
  EXPECT_EQ(g.neighbors_of_cell(g.cell_at(2, 2)).size(), 2u);
}

TEST(Grid, EdgeCellHasThreeNeighbors) {
  const Grid g(3, 3);
  EXPECT_EQ(g.neighbors_of_cell(g.cell_at(1, 0)).size(), 3u);
}

TEST(Grid, InteriorCellHasFourNeighbors) {
  const Grid g(3, 3);
  EXPECT_EQ(g.neighbors_of_cell(g.cell_at(1, 1)).size(), 4u);
}

TEST(Grid, NeighborRelationIsSymmetric) {
  const Grid g(5, 4);
  for (CellId cell = 0; cell < g.num_cells(); ++cell) {
    for (CellId n : g.neighbors_of_cell(cell)) {
      const auto back = g.neighbors_of_cell(n);
      EXPECT_NE(std::find(back.begin(), back.end(), cell), back.end());
    }
  }
}

TEST(Grid, FacesOfCellAreDistinctAndValid) {
  const Grid g(4, 4);
  for (CellId cell = 0; cell < g.num_cells(); ++cell) {
    const auto faces = g.faces_of_cell(cell);
    std::set<FaceId> unique(faces.begin(), faces.end());
    EXPECT_EQ(unique.size(), 4u);
    for (FaceId f : faces) {
      ASSERT_GE(f, 0);
      ASSERT_LT(f, g.num_faces());
      const auto cells = g.cells_of_face(f);
      EXPECT_TRUE(cells[0] == cell || cells[1] == cell);
    }
  }
}

TEST(Grid, EveryFaceTouchesOneOrTwoCells) {
  const Grid g(4, 3);
  std::int64_t boundary = 0;
  for (FaceId f = 0; f < g.num_faces(); ++f) {
    const auto cells = g.cells_of_face(f);
    EXPECT_GE(cells[0], 0);
    if (cells[1] == kNoCell) {
      ++boundary;
    } else {
      EXPECT_NE(cells[0], cells[1]);
    }
  }
  // Perimeter faces: 2*(nx + ny).
  EXPECT_EQ(boundary, 2 * (4 + 3));
}

TEST(Grid, SharedFaceAgreesWithFacesOfCell) {
  const Grid g(4, 4);
  const CellId a = g.cell_at(1, 1);
  const CellId east = g.cell_at(2, 1);
  const CellId north = g.cell_at(1, 2);
  EXPECT_EQ(g.shared_face(a, east), g.faces_of_cell(a)[1]);
  EXPECT_EQ(g.shared_face(a, north), g.faces_of_cell(a)[3]);
  // Symmetric.
  EXPECT_EQ(g.shared_face(east, a), g.shared_face(a, east));
}

TEST(Grid, SharedFaceRejectsNonAdjacentCells) {
  const Grid g(4, 4);
  EXPECT_THROW((void)g.shared_face(g.cell_at(0, 0), g.cell_at(2, 0)),
               util::InvalidArgument);
  EXPECT_THROW((void)g.shared_face(g.cell_at(0, 0), g.cell_at(1, 1)),
               util::InvalidArgument);
  EXPECT_THROW((void)g.shared_face(g.cell_at(0, 0), g.cell_at(0, 0)),
               util::InvalidArgument);
}

TEST(Grid, FaceNodesAreAdjacentGridPoints) {
  const Grid g(3, 3);
  for (FaceId f = 0; f < g.num_faces(); ++f) {
    const auto nodes = g.nodes_of_face(f);
    const Point a = g.node_position(nodes[0]);
    const Point b = g.node_position(nodes[1]);
    const double dist =
        std::abs(a.x - b.x) + std::abs(a.y - b.y);  // Manhattan
    EXPECT_DOUBLE_EQ(dist, 1.0);
  }
}

TEST(Grid, CellNodesFormUnitSquare) {
  const Grid g(3, 3);
  const auto nodes = g.nodes_of_cell(g.cell_at(1, 2));
  const Point sw = g.node_position(nodes[0]);
  const Point ne = g.node_position(nodes[2]);
  EXPECT_DOUBLE_EQ(sw.x, 1.0);
  EXPECT_DOUBLE_EQ(sw.y, 2.0);
  EXPECT_DOUBLE_EQ(ne.x, 2.0);
  EXPECT_DOUBLE_EQ(ne.y, 3.0);
}

TEST(Grid, BoundaryFaceDetection) {
  const Grid g(3, 3);
  const auto west_of_corner = g.faces_of_cell(g.cell_at(0, 0))[0];
  EXPECT_TRUE(g.is_boundary_face(west_of_corner));
  const auto east_of_corner = g.faces_of_cell(g.cell_at(0, 0))[1];
  EXPECT_FALSE(g.is_boundary_face(east_of_corner));
}

/// Euler-style sweep over grid shapes: shared faces count must equal
/// the number of adjacent cell pairs.
class GridShapeTest
    : public ::testing::TestWithParam<std::pair<std::int32_t, std::int32_t>> {
};

TEST_P(GridShapeTest, InteriorFaceCountMatchesAdjacency) {
  const auto [nx, ny] = GetParam();
  const Grid g(nx, ny);
  std::int64_t adjacency = 0;
  for (CellId cell = 0; cell < g.num_cells(); ++cell) {
    adjacency += static_cast<std::int64_t>(g.neighbors_of_cell(cell).size());
  }
  adjacency /= 2;
  std::int64_t interior_faces = 0;
  for (FaceId f = 0; f < g.num_faces(); ++f) {
    if (!g.is_boundary_face(f)) ++interior_faces;
  }
  EXPECT_EQ(interior_faces, adjacency);
  // And interior faces = nx*(ny-1) + (nx-1)*ny.
  EXPECT_EQ(interior_faces,
            static_cast<std::int64_t>(nx) * (ny - 1) +
                static_cast<std::int64_t>(nx - 1) * ny);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GridShapeTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 8},
                                           std::pair{8, 1}, std::pair{2, 2},
                                           std::pair{5, 3}, std::pair{16, 16},
                                           std::pair{80, 40}));

}  // namespace
}  // namespace krak::mesh
