#include "mesh/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace krak::mesh {
namespace {

void expect_decks_equal(const InputDeck& a, const InputDeck& b) {
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.grid().nx(), b.grid().nx());
  EXPECT_EQ(a.grid().ny(), b.grid().ny());
  EXPECT_EQ(a.detonator(), b.detonator());
  EXPECT_EQ(a.materials(), b.materials());
}

TEST(DeckIo, RoundTripCylindricalDeck) {
  const InputDeck original = make_cylindrical_deck(40, 20);
  std::stringstream stream;
  write_deck(stream, original);
  const InputDeck loaded = read_deck(stream);
  expect_decks_equal(original, loaded);
}

TEST(DeckIo, RoundTripAllStandardSizes) {
  for (DeckSize size : {DeckSize::kSmall, DeckSize::kMedium}) {
    const InputDeck original = make_standard_deck(size);
    std::stringstream stream;
    write_deck(stream, original);
    const InputDeck loaded = read_deck(stream);
    expect_decks_equal(original, loaded);
  }
}

TEST(DeckIo, RoundTripUniformAndTwoMaterial) {
  for (const InputDeck& original :
       {make_uniform_deck(8, 4, Material::kFoam),
        make_two_material_deck(8, 4, Material::kAluminumOuter)}) {
    std::stringstream stream;
    write_deck(stream, original);
    expect_decks_equal(original, read_deck(stream));
  }
}

TEST(DeckIo, RunLengthEncodingIsCompact) {
  // The layered medium deck (204,800 cells) must serialize to well
  // under one byte per cell.
  const InputDeck deck = make_standard_deck(DeckSize::kMedium);
  std::stringstream stream;
  write_deck(stream, deck);
  EXPECT_LT(stream.str().size(), 20000u);
}

TEST(DeckIo, SaveAndLoadThroughFiles) {
  const std::string path = ::testing::TempDir() + "/deck_io_test.krakdeck";
  const InputDeck original = make_cylindrical_deck(16, 8);
  save_deck(path, original);
  const InputDeck loaded = load_deck(path);
  expect_decks_equal(original, loaded);
  std::remove(path.c_str());
}

TEST(DeckIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_deck("/nonexistent-dir/missing.krakdeck"),
               util::KrakError);
}

TEST(DeckIo, RejectsBadMagic) {
  std::stringstream stream("notadeck 1\nend\n");
  EXPECT_THROW((void)read_deck(stream), util::KrakError);
}

TEST(DeckIo, RejectsUnsupportedVersion) {
  std::stringstream stream("krakdeck 99\nend\n");
  EXPECT_THROW((void)read_deck(stream), util::KrakError);
}

TEST(DeckIo, RejectsMissingGrid) {
  std::stringstream stream("krakdeck 1\nname x\nend\n");
  EXPECT_THROW((void)read_deck(stream), util::KrakError);
}

TEST(DeckIo, RejectsTruncatedMaterials) {
  std::stringstream stream(
      "krakdeck 1\nname x\ngrid 2 2\ndetonator 0 0\nmaterials 2x0\n");
  EXPECT_THROW((void)read_deck(stream), util::KrakError);
}

TEST(DeckIo, RejectsOverlongMaterials) {
  std::stringstream stream(
      "krakdeck 1\nname x\ngrid 2 2\ndetonator 0 0\nmaterials 5x0\nend\n");
  EXPECT_THROW((void)read_deck(stream), util::KrakError);
}

TEST(DeckIo, RejectsUnknownMaterialIndex) {
  std::stringstream stream(
      "krakdeck 1\nname x\ngrid 2 2\ndetonator 0 0\nmaterials 4x9\nend\n");
  EXPECT_THROW((void)read_deck(stream), util::KrakError);
}

TEST(DeckIo, RejectsMalformedRunToken) {
  std::stringstream stream(
      "krakdeck 1\nname x\ngrid 2 2\ndetonator 0 0\nmaterials four_x0\nend\n");
  EXPECT_THROW((void)read_deck(stream), util::KrakError);
}

TEST(DeckIo, RejectsUnknownKey) {
  std::stringstream stream("krakdeck 1\nbogus 1\nend\n");
  EXPECT_THROW((void)read_deck(stream), util::KrakError);
}

TEST(DeckIo, RejectsMissingEnd) {
  std::stringstream stream(
      "krakdeck 1\nname x\ngrid 1 1\ndetonator 0 0\nmaterials 1x0\n");
  EXPECT_THROW((void)read_deck(stream), util::KrakError);
}

TEST(DescribeDeck, MentionsAllMaterials) {
  const std::string text = describe_deck(make_standard_deck(DeckSize::kSmall));
  EXPECT_NE(text.find("High-Explosive Gas"), std::string::npos);
  EXPECT_NE(text.find("Foam"), std::string::npos);
  EXPECT_NE(text.find("3200"), std::string::npos);
}

}  // namespace
}  // namespace krak::mesh
