#include "mesh/deck.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace krak::mesh {
namespace {

TEST(InputDeck, MaterialCountMustMatchCells) {
  Grid g(2, 2);
  std::vector<Material> three(3, Material::kFoam);
  EXPECT_THROW(InputDeck("bad", g, three, Point{}), util::InvalidArgument);
}

TEST(StandardDecks, CellCountsMatchPaper) {
  // Section 2.1: small 3,200; medium 204,800; large 819,200 cells.
  EXPECT_EQ(make_standard_deck(DeckSize::kSmall).grid().num_cells(), 3200);
  EXPECT_EQ(make_standard_deck(DeckSize::kMedium).grid().num_cells(), 204800);
  EXPECT_EQ(make_standard_deck(DeckSize::kLarge).grid().num_cells(), 819200);
  EXPECT_EQ(standard_deck_cells(DeckSize::kSmall), 3200);
  EXPECT_EQ(standard_deck_cells(DeckSize::kMedium), 204800);
  EXPECT_EQ(standard_deck_cells(DeckSize::kLarge), 819200);
}

TEST(StandardDecks, Figure2DeckHas65536Cells) {
  EXPECT_EQ(make_figure2_deck().grid().num_cells(), 65536);
}

TEST(StandardDecks, AllFourMaterialsPresent) {
  for (DeckSize size :
       {DeckSize::kSmall, DeckSize::kMedium, DeckSize::kLarge}) {
    const InputDeck deck = make_standard_deck(size);
    EXPECT_EQ(deck.distinct_material_count(), kMaterialCount)
        << deck_size_name(size);
  }
}

TEST(StandardDecks, RatiosApproximatePaperTable2) {
  // Table 2 heterogeneous row: 39.1 / 17.2 / 20.3 / 23.4 percent. The
  // generator quantizes layer boundaries to whole columns, so allow a
  // one-column tolerance.
  for (DeckSize size :
       {DeckSize::kSmall, DeckSize::kMedium, DeckSize::kLarge}) {
    const InputDeck deck = make_standard_deck(size);
    const auto ratios = deck.material_ratios();
    const double column = 1.0 / static_cast<double>(deck.grid().nx());
    for (std::size_t m = 0; m < kMaterialCount; ++m) {
      EXPECT_NEAR(ratios[m], kPaperMaterialRatios[m], column + 1e-9)
          << deck_size_name(size) << " material " << m;
    }
  }
}

TEST(StandardDecks, RatiosSumToOne) {
  const InputDeck deck = make_standard_deck(DeckSize::kSmall);
  const auto ratios = deck.material_ratios();
  double sum = 0.0;
  for (double r : ratios) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(CylindricalDeck, LayersAreRadiallyOrdered) {
  // Along any row, material index must be non-decreasing in the layer
  // order HE gas -> Al inner -> foam -> Al outer.
  const InputDeck deck = make_cylindrical_deck(40, 10);
  const Grid& g = deck.grid();
  for (std::int32_t j = 0; j < g.ny(); ++j) {
    std::size_t previous = 0;
    for (std::int32_t i = 0; i < g.nx(); ++i) {
      const std::size_t index = material_index(deck.material_of(g.cell_at(i, j)));
      EXPECT_GE(index, previous);
      previous = index;
    }
  }
}

TEST(CylindricalDeck, InnerColumnIsHEGasOuterIsAluminum) {
  const InputDeck deck = make_cylindrical_deck(80, 40);
  const Grid& g = deck.grid();
  EXPECT_EQ(deck.material_of(g.cell_at(0, 0)), Material::kHEGas);
  EXPECT_EQ(deck.material_of(g.cell_at(g.nx() - 1, 0)),
            Material::kAluminumOuter);
}

TEST(CylindricalDeck, MaterialsConstantAlongAxis) {
  const InputDeck deck = make_cylindrical_deck(32, 16);
  const Grid& g = deck.grid();
  for (std::int32_t i = 0; i < g.nx(); ++i) {
    const Material reference = deck.material_of(g.cell_at(i, 0));
    for (std::int32_t j = 1; j < g.ny(); ++j) {
      EXPECT_EQ(deck.material_of(g.cell_at(i, j)), reference);
    }
  }
}

TEST(CylindricalDeck, DetonatorOnAxisBelowCenter) {
  // Section 2.1: "An explosive detonator is placed on the axis of
  // rotation, slightly below center."
  const InputDeck deck = make_cylindrical_deck(80, 40);
  EXPECT_DOUBLE_EQ(deck.detonator().x, 0.0);
  EXPECT_LT(deck.detonator().y, 20.0);
  EXPECT_GT(deck.detonator().y, 0.0);
}

TEST(CylindricalDeck, TinyGridStillHasFourLayers) {
  const InputDeck deck = make_cylindrical_deck(4, 2);
  EXPECT_EQ(deck.distinct_material_count(), kMaterialCount);
}

TEST(CylindricalDeck, RejectsDegenerateDimensions) {
  EXPECT_THROW((void)make_cylindrical_deck(3, 2), util::InvalidArgument);
  EXPECT_THROW((void)make_cylindrical_deck(8, 0), util::InvalidArgument);
}

TEST(UniformDeck, SingleMaterialEverywhere) {
  const InputDeck deck = make_uniform_deck(8, 8, Material::kFoam);
  EXPECT_EQ(deck.distinct_material_count(), 1u);
  const auto counts = deck.material_cell_counts();
  EXPECT_EQ(counts[material_index(Material::kFoam)], 64);
}

TEST(TwoMaterialDeck, HalvesAreExact) {
  // Method 1 calibration layout: HE gas on the left half, the material
  // under test on the right (a detonation needs HE gas present).
  const InputDeck deck = make_two_material_deck(16, 4, Material::kFoam);
  const auto counts = deck.material_cell_counts();
  EXPECT_EQ(counts[material_index(Material::kHEGas)], 32);
  EXPECT_EQ(counts[material_index(Material::kFoam)], 32);
}

TEST(TwoMaterialDeck, RejectsOddColumns) {
  EXPECT_THROW((void)make_two_material_deck(5, 4, Material::kFoam),
               util::InvalidArgument);
}

TEST(InputDeck, MaterialOfChecksRange) {
  const InputDeck deck = make_uniform_deck(2, 2, Material::kHEGas);
  EXPECT_THROW((void)deck.material_of(4), util::InvalidArgument);
  EXPECT_THROW((void)deck.material_of(-1), util::InvalidArgument);
}

TEST(DeckSizeName, CoversAllSizes) {
  EXPECT_EQ(deck_size_name(DeckSize::kSmall), "small");
  EXPECT_EQ(deck_size_name(DeckSize::kMedium), "medium");
  EXPECT_EQ(deck_size_name(DeckSize::kLarge), "large");
}

}  // namespace
}  // namespace krak::mesh
