// The kraksynth generator contract: specs materialize deterministically,
// the paper-shaped default reproduces the standard cylindrical layering,
// the text format round-trips exactly, and malformed specs are rejected
// with named violations (the large-deck path of docs/PERFORMANCE.md,
// "The 100k-rank regime").

#include "mesh/synthetic.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "mesh/io.hpp"
#include "util/error.hpp"

namespace krak::mesh {
namespace {

TEST(Synthetic, PaperSpecReproducesCylindricalLayering) {
  const InputDeck synthetic = make_synthetic_deck(paper_synthetic_spec(80, 40));
  const InputDeck cylinder = make_cylindrical_deck(80, 40);
  EXPECT_EQ(synthetic.materials(), cylinder.materials());
  EXPECT_EQ(synthetic.detonator(), cylinder.detonator());
}

TEST(Synthetic, EmitsAtLeastHundredThousandUsefulCells) {
  const SyntheticSpec spec = paper_synthetic_spec(1024, 128);
  const InputDeck deck = make_synthetic_deck(spec);
  EXPECT_GE(deck.grid().num_cells(), 100'000);
  // Paper-shaped mix: every material present, ratios near Table 2's.
  EXPECT_EQ(deck.distinct_material_count(), kMaterialCount);
  const auto ratios = deck.material_ratios();
  for (std::size_t i = 0; i < kMaterialCount; ++i) {
    EXPECT_NEAR(ratios[i], kPaperMaterialRatios[i], 0.01) << "material " << i;
  }
}

TEST(Synthetic, DeterministicAcrossCalls) {
  const SyntheticSpec spec = paper_synthetic_spec(256, 64);
  const InputDeck a = make_synthetic_deck(spec);
  const InputDeck b = make_synthetic_deck(spec);
  EXPECT_EQ(a.materials(), b.materials());
  EXPECT_EQ(a.name(), b.name());
}

TEST(Synthetic, TextFormatRoundTripsExactly) {
  SyntheticSpec spec = paper_synthetic_spec(512, 256, "round trip");
  spec.detonator = Point{1.5, 100.25};
  std::stringstream stream;
  write_synthetic(stream, spec);
  const SyntheticSpec parsed = read_synthetic(stream);
  EXPECT_EQ(parsed.name, "round_trip");  // names are single tokens
  EXPECT_EQ(parsed.nx, spec.nx);
  EXPECT_EQ(parsed.ny, spec.ny);
  ASSERT_EQ(parsed.layers.size(), spec.layers.size());
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    EXPECT_EQ(parsed.layers[i].material, spec.layers[i].material);
    EXPECT_DOUBLE_EQ(parsed.layers[i].fraction, spec.layers[i].fraction);
  }
  EXPECT_EQ(parsed.detonator, spec.detonator);
  EXPECT_EQ(make_synthetic_deck(parsed).materials(),
            make_synthetic_deck(spec).materials());
}

TEST(Synthetic, OmittedDetonatorUsesPaperPlacement) {
  SyntheticSpec spec = paper_synthetic_spec(128, 50);
  std::stringstream stream;
  write_synthetic(stream, spec);
  EXPECT_EQ(stream.str().find("detonator"), std::string::npos);
  const InputDeck deck = make_synthetic_deck(read_synthetic(stream));
  EXPECT_EQ(deck.detonator(), (Point{0.0, 20.0}));
}

TEST(Synthetic, CustomMixKeepsEveryLayerAtLeastOneColumn) {
  SyntheticSpec spec;
  spec.nx = 5;
  spec.ny = 2;
  spec.layers = {{Material::kHEGas, 0.98},
                 {Material::kFoam, 0.01},
                 {Material::kAluminumOuter, 0.01}};
  const InputDeck deck = make_synthetic_deck(spec);
  EXPECT_EQ(deck.distinct_material_count(), 3u);
}

TEST(Synthetic, RejectsMalformedSpecs) {
  const auto expect_rejected = [](const std::string& text) {
    std::istringstream in(text);
    EXPECT_THROW((void)read_synthetic(in), util::KrakError) << text;
  };
  expect_rejected("krakdeck 1\nend\n");                       // wrong magic
  expect_rejected("kraksynth 2\nend\n");                      // bad version
  expect_rejected("kraksynth 1\ngrid 8 8\nlayer 9 1.0\nend\n");  // bad index
  expect_rejected("kraksynth 1\ngrid 8 8\nlayer 0 0.5\nend\n");  // sum != 1
  expect_rejected("kraksynth 1\ngrid 0 8\nlayer 0 1.0\nend\n");  // bad grid
  expect_rejected("kraksynth 1\ngrid 8 8\nlayer 0 1.0\n");       // no end
  expect_rejected("kraksynth 1\ngrid 8 8\nbogus 3\nend\n");      // bad key
  expect_rejected(
      "kraksynth 1\ngrid 2 8\nlayer 0 0.3\nlayer 1 0.3\nlayer 2 0.4\nend\n");
}

TEST(Synthetic, InvalidSpecRejectedByGenerator) {
  SyntheticSpec spec;
  spec.nx = 16;
  spec.ny = 16;
  EXPECT_THROW((void)make_synthetic_deck(spec), util::KrakError);  // no layers
  spec.layers = {{Material::kHEGas, 0.7}};
  EXPECT_THROW((void)make_synthetic_deck(spec), util::KrakError);  // sum != 1
}

}  // namespace
}  // namespace krak::mesh
