#pragma once

#include <string>

#include "core/calibration.hpp"
#include "core/model.hpp"
#include "core/validation.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "simapp/costmodel.hpp"
#include "simapp/simkrak.hpp"

namespace krakbench {

/// Everything a reproduction binary needs: the ground-truth engine (the
/// "application"), the validation machine, and a model calibrated with
/// Method 2 (the method the paper uses for its validation results) on
/// the medium deck at four processor counts spanning the knee.
struct Environment {
  krak::simapp::ComputationCostEngine engine;
  krak::network::MachineConfig machine;
  krak::core::KrakModel model;

  Environment();
};

/// Lazily constructed shared environment (calibration takes a few
/// seconds; bench binaries build it once).
[[nodiscard]] const Environment& environment();

/// Uniform banner naming the experiment and the paper artifact it
/// regenerates.
void print_header(const std::string& title, const std::string& paper_ref);

/// Directory for CSV side-outputs (created on demand): ./bench_out.
[[nodiscard]] std::string output_dir();

/// PE counts used to calibrate the shared model (medium deck).
[[nodiscard]] const std::vector<std::int32_t>& calibration_pe_counts();

}  // namespace krakbench
