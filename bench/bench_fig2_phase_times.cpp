// Regenerates Figure 2: computation time by phase on 256 processors
// with a 65,536-cell spatial grid, per material, MPI time excluded.
// At this scale subgrids are homogeneous (256 cells each), so each bar
// is the single-material subgrid time of that phase.

#include <iostream>

#include "common.hpp"
#include "mesh/deck.hpp"
#include "simapp/costmodel.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace krak;
  krakbench::print_header(
      "Figure 2: computation time by phase (256 PEs, 65,536 cells, no MPI)",
      "Figure 2 (Section 2.2)");

  const auto& env = krakbench::environment();
  const mesh::InputDeck deck = mesh::make_figure2_deck();
  const std::int64_t cells_per_pe = deck.grid().num_cells() / 256;
  std::cout << "Cells per processor: " << cells_per_pe
            << " (homogeneous subgrids)\n\n";

  util::TextTable table({"Phase", "HE Gas (us)", "Al In (us)", "Foam (us)",
                         "Al Out (us)", "Material dep."});
  util::CsvWriter csv(krakbench::output_dir() + "/fig2_phase_times.csv");
  csv.write_header({"phase", "he_gas_s", "al_inner_s", "foam_s", "al_outer_s"});

  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    std::array<double, mesh::kMaterialCount> times{};
    for (mesh::Material m : mesh::all_materials()) {
      times[mesh::material_index(m)] =
          env.engine.uniform_subgrid_time(phase, m, cells_per_pe);
    }
    const bool dependent = env.engine.phase_law(phase).material_dependent;
    table.add_row({std::to_string(phase),
                   util::format_double(times[0] * 1e6, 1),
                   util::format_double(times[1] * 1e6, 1),
                   util::format_double(times[2] * 1e6, 1),
                   util::format_double(times[3] * 1e6, 1),
                   dependent ? "yes" : "no"});
    csv.write_row(std::vector<double>{static_cast<double>(phase), times[0],
                                      times[1], times[2], times[3]});
  }
  std::cout << table;
  std::cout << "\nShape check (paper): certain phases (e.g. 14) are material"
               " dependent with HE gas the most expensive;\nothers depend"
               " only on the cell count. CSV: "
            << krakbench::output_dir() << "/fig2_phase_times.csv\n";
  return 0;
}
