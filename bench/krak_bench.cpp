// krak_bench: the JSON bench harness (docs/OBSERVABILITY.md).
//
// Runs the Table 5 / Table 6 validation campaigns plus a simulator
// replay and emits a schema-stable krak-bench-v1 document
// (BENCH_*.json) carrying per-run wall times, thread-pool utilization,
// the replay's compute / point-to-point / collective decomposition,
// and a snapshot of the global metric registry — everything a later PR
// needs to compare performance against this one.
//
// Usage:
//   krak_bench [--quick] [--out FILE]   generate a report (default
//                                       BENCH_PR10.json)
//   krak_bench --threads N              thread-pool width for the
//                                       campaigns and the partitioner's
//                                       speculative paths (0 =
//                                       hardware); the parallel-scaling
//                                       replays pin their shard counts
//                                       per scenario instead
//   krak_bench --compare FILE           after generating, fail if any
//                                       campaign's wall_seconds — or any
//                                       parallel replay's
//                                       parallel_wall_s — is more than
//                                       1.5x the like-named entry in
//                                       FILE, or if any campaign or
//                                       parallel-replay name is
//                                       unmatched in either direction
//                                       (CI perf-smoke gate)
//   krak_bench --partition-store DIR    persist partitions as krakpart
//                                       files under DIR; a rerun with
//                                       the same DIR skips every
//                                       partition computation
//   krak_bench --faults FILE            inject a krakfaults plan into
//                                       every campaign measurement
//   krak_bench --journal FILE           write-ahead campaign journal
//                                       (krakjournal 1): every scenario
//                                       state change is appended and
//                                       synced before the campaign acts
//                                       on it
//   krak_bench --resume                 with --journal: replay scenarios
//                                       the journal records as done
//                                       (bit-identical measurements),
//                                       skip quarantined ones, re-run
//                                       only the remainder. Without
//                                       --resume an existing non-empty
//                                       journal is refused rather than
//                                       silently reused
//   krak_bench --max-attempts N         attempts per scenario before its
//                                       failure is recorded (default 1)
//   krak_bench --quarantine-after N     deterministic failures before a
//                                       scenario is quarantined as
//                                       poison (default 2)
//   krak_bench --retry-backoff S        first retry delay in seconds,
//                                       doubling per retry with
//                                       deterministic jitter (default 0)
//   krak_bench --scenario-deadline S    wall budget per attempt; expiry
//                                       is a structured "deadline"
//                                       failure, never a hang
//   krak_bench --campaign-deadline S    wall budget per campaign
//   krak_bench --validate FILE          schema-check an existing report
//
// --quick calibrates on the small deck only and shrinks the campaigns;
// it exists for CI smoke coverage, not for cross-PR comparison. Every
// generated report is self-validated before it is written, so a
// schema/emitter mismatch fails the run instead of producing an
// artifact that only breaks downstream.
//
// Campaign scenarios that fail (fault-injected hang, bad
// configuration) do not abort the run: the remaining scenarios are
// still measured, the report is still written — with a schema-valid
// "failures" section naming each failed scenario and its cause — and
// the exit status is non-zero so CI notices.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/bench_report.hpp"
#include "core/calibration.hpp"
#include "core/campaign.hpp"
#include "core/campaign_journal.hpp"
#include "core/partition_cache.hpp"
#include "fault/plan.hpp"
#include "mesh/synthetic.hpp"
#include "obs/bench_schema.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "partition/partition.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace krak;

struct Options {
  bool quick = false;
  std::string out = "BENCH_PR10.json";
  std::string validate;  // non-empty: validate this file and exit
  std::string faults;    // non-empty: krakfaults plan for the campaigns
  std::string compare;   // non-empty: baseline report for the perf gate
  std::string partition_store;  // non-empty: persistent partition store dir
  std::size_t threads = 0;  // campaign pool width; 0 = hardware
  std::string journal;      // non-empty: write-ahead campaign journal
  bool resume = false;      // replay an existing journal's state
  std::uint32_t max_attempts = 1;
  std::uint32_t quarantine_after = 2;
  double retry_backoff = 0.0;      // seconds; 0 retries immediately
  double scenario_deadline = 0.0;  // seconds; <= 0 unlimited
  double campaign_deadline = 0.0;  // seconds; <= 0 unlimited
};

[[noreturn]] void usage(int exit_code) {
  std::cout << "usage: krak_bench [--quick] [--out FILE] [--faults FILE]\n"
               "                  [--threads N] [--compare BASELINE]\n"
               "                  [--partition-store DIR]\n"
               "                  [--journal FILE] [--resume]\n"
               "                  [--max-attempts N] [--quarantine-after N]\n"
               "                  [--retry-backoff S]\n"
               "                  [--scenario-deadline S]\n"
               "                  [--campaign-deadline S]\n"
               "       krak_bench --validate FILE\n";
  // krak-lint: allow(no-abort usage exit before any work or RAII state exists)
  std::exit(exit_code);
}

/// Parse a non-negative count argument or die with usage.
std::uint64_t parse_count(const std::string& flag, const std::string& value) {
  std::size_t consumed = 0;
  unsigned long parsed = 0;
  try {
    parsed = std::stoul(value, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != value.size()) {
    std::cerr << "krak_bench: " << flag
              << " expects a non-negative integer, got '" << value << "'\n";
    usage(2);
  }
  return parsed;
}

/// Parse a non-negative seconds argument or die with usage.
double parse_seconds(const std::string& flag, const std::string& value) {
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != value.size() || parsed < 0.0) {
    std::cerr << "krak_bench: " << flag
              << " expects a non-negative number of seconds, got '" << value
              << "'\n";
    usage(2);
  }
  return parsed;
}

Options parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      options.out = argv[++i];
    } else if (arg == "--validate" && i + 1 < argc) {
      options.validate = argv[++i];
    } else if (arg == "--faults" && i + 1 < argc) {
      options.faults = argv[++i];
    } else if (arg == "--compare" && i + 1 < argc) {
      options.compare = argv[++i];
    } else if (arg == "--partition-store" && i + 1 < argc) {
      options.partition_store = argv[++i];
    } else if (arg == "--journal" && i + 1 < argc) {
      options.journal = argv[++i];
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--max-attempts" && i + 1 < argc) {
      options.max_attempts = static_cast<std::uint32_t>(
          parse_count(arg, argv[++i]));
      if (options.max_attempts == 0) {
        std::cerr << "krak_bench: --max-attempts must be >= 1\n";
        usage(2);
      }
    } else if (arg == "--quarantine-after" && i + 1 < argc) {
      options.quarantine_after = static_cast<std::uint32_t>(
          parse_count(arg, argv[++i]));
      if (options.quarantine_after == 0) {
        std::cerr << "krak_bench: --quarantine-after must be >= 1\n";
        usage(2);
      }
    } else if (arg == "--retry-backoff" && i + 1 < argc) {
      options.retry_backoff = parse_seconds(arg, argv[++i]);
    } else if (arg == "--scenario-deadline" && i + 1 < argc) {
      options.scenario_deadline = parse_seconds(arg, argv[++i]);
    } else if (arg == "--campaign-deadline" && i + 1 < argc) {
      options.campaign_deadline = parse_seconds(arg, argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = static_cast<std::size_t>(
          parse_count(arg, argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::cerr << "krak_bench: unknown argument '" << arg << "'\n";
      usage(2);
    }
  }
  return options;
}

int validate_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "krak_bench: cannot open '" << path << "'\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  obs::Json report;
  try {
    report = obs::Json::parse(buffer.str());
  } catch (const util::KrakError& error) {
    std::cerr << "krak_bench: " << path << ": " << error.what() << "\n";
    return 1;
  }
  const std::vector<std::string> violations =
      obs::validate_bench_report(report);
  for (const std::string& violation : violations) {
    std::cerr << path << ": " << violation << "\n";
  }
  if (!violations.empty()) {
    std::cerr << path << ": " << violations.size()
              << " schema violation(s)\n";
    return 1;
  }
  std::cout << path << ": valid " << obs::kBenchSchemaId << " report\n";
  return 0;
}

simapp::SimKrakResult run_replay(const mesh::InputDeck& deck, std::int32_t pes,
                                 const network::MachineConfig& machine,
                                 const simapp::ComputationCostEngine& engine,
                                 std::int32_t iterations) {
  // Seed 1 matches ValidationConfig::partition_seed, so the replay
  // reuses the campaign's cached partition when both run in-process.
  const auto partitioned = core::PartitionCache::global().get(
      deck, pes, partition::PartitionMethod::kMultilevel, /*seed=*/1);
  simapp::SimKrakOptions options;
  options.iterations = iterations;
  const simapp::SimKrak app(deck, partitioned->partition, machine, engine,
                            partitioned->stats, options);
  return app.run();
}

/// The perf-smoke regression gate: load + validate the baseline report,
/// then run both halves of the comparison — campaign wall_seconds
/// (core::compare_campaign_walls) and parallel-replay parallel_wall_s
/// (core::compare_replay_walls). Each half fails both on wall-time
/// regressions beyond `factor` and on names unmatched in either
/// direction. Returns the number of failures.
int run_compare_gate(const obs::Json& report, const std::string& path,
                     double factor) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "krak_bench: cannot open baseline '" << path << "'\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  obs::Json baseline;
  try {
    baseline = obs::Json::parse(buffer.str());
  } catch (const util::KrakError& error) {
    std::cerr << "krak_bench: " << path << ": " << error.what() << "\n";
    return 1;
  }
  const std::vector<std::string> violations =
      obs::validate_bench_report(baseline);
  if (!violations.empty()) {
    std::cerr << "krak_bench: baseline " << path << " has "
              << violations.size() << " schema violation(s)\n";
    return 1;
  }

  std::vector<std::string> failures =
      core::compare_campaign_walls(report, baseline, factor);
  const std::vector<std::string> replay_failures =
      core::compare_replay_walls(report, baseline, factor);
  failures.insert(failures.end(), replay_failures.begin(),
                  replay_failures.end());
  for (const std::string& failure : failures) {
    std::cerr << "krak_bench: " << failure << "\n";
  }
  if (failures.empty()) {
    std::cout << "compare: every campaign and parallel replay matched '"
              << path << "' and stayed within " << factor << "x\n";
  }
  // Surface the Amdahl datapoints of every parallel replay next to the
  // gate verdict: the speedup against the oracle and how much of the
  // parallel wall was serial coordinator work (the multi-core ceiling).
  if (const obs::Json* replays = report.find("replays")) {
    for (const obs::Json& replay : replays->as_array()) {
      const obs::Json* parallel = replay.find("parallel");
      if (parallel == nullptr) continue;
      const obs::Json* speedup = parallel->find("speedup_vs_oracle");
      const obs::Json* fraction =
          parallel->find("coordinator_serial_fraction");
      if (speedup == nullptr || fraction == nullptr) continue;
      std::cout << "compare: replay " << replay.find("name")->as_string()
                << ": speedup_vs_oracle " << speedup->as_double()
                << ", coordinator_serial_fraction " << fraction->as_double()
                << "\n";
    }
  }
  return static_cast<int>(failures.size());
}

/// The parallel-simulation scaling scenario: one SimKrak run measured
/// twice — single-thread oracle, then the conservative parallel engine
/// at `threads` workers — with the results required to be bit-identical
/// before the walls are recorded. The full-mode scenarios spread the
/// medium deck over a scaled-up 2560-node machine (10,240 ranks) and a
/// synthetic deck over 102,400 ranks — the 10k-100k-rank regime the
/// parallel engine exists for (docs/PERFORMANCE.md, "The 100k-rank
/// regime"); quick mode shrinks to 128 standard and ~20k synthetic
/// ranks for CI smoke coverage. `method` picks the partitioner: the
/// standard-deck scenarios keep multilevel for baseline continuity, the
/// huge synthetic ones use RCB, whose cost stays negligible at 100k+
/// parts. `full_stack` turns on the hierarchical network and shared-NIC
/// contention, proving in the artifact that NIC-configured scenarios
/// run sharded — no oracle fallback.
obs::Json run_parallel_scaling(const mesh::InputDeck& deck,
                               std::int32_t ranks, std::string name,
                               const network::MachineConfig& base_machine,
                               const simapp::ComputationCostEngine& engine,
                               std::int32_t threads,
                               std::int32_t partition_threads,
                               partition::PartitionMethod method =
                                   partition::PartitionMethod::kMultilevel,
                               bool full_stack = false,
                               std::int32_t iterations = 1) {
  network::MachineConfig machine = base_machine;
  if (machine.total_pes() < ranks) {
    machine.nodes = (ranks + machine.pes_per_node - 1) / machine.pes_per_node;
  }
  const auto partitioned = core::PartitionCache::global().get(
      deck, ranks, method, /*seed=*/1, partition_threads);

  simapp::SimKrakOptions options;
  options.iterations = iterations;
  options.hierarchical_network = full_stack;
  options.nic_contention = full_stack;

  // Each engine is timed twice and the better wall recorded: host
  // interference only ever inflates a wall, and determinism makes the
  // rerun literally identical work, so min-of-2 is the closest cheap
  // estimator of the engine's actual cost on a shared machine. The
  // best attempt's result is the one kept, so its host-timing fields
  // (coordinator_seconds) describe the same run as the recorded wall.
  const auto timed_run = [](const simapp::SimKrak& app, double* wall) {
    std::optional<simapp::SimKrakResult> result;
    *wall = std::numeric_limits<double>::infinity();
    for (int attempt = 0; attempt < 2; ++attempt) {
      const util::Stopwatch watch;
      simapp::SimKrakResult attempt_result = app.run();
      const double seconds = watch.seconds();
      if (seconds < *wall) {
        *wall = seconds;
        result = std::move(attempt_result);
      }
    }
    return std::move(*result);
  };

  const simapp::SimKrak serial_app(deck, partitioned->partition, machine,
                                   engine, partitioned->stats, options);
  double serial_wall = 0.0;
  const simapp::SimKrakResult serial = timed_run(serial_app, &serial_wall);

  options.sim_threads = threads;
  const simapp::SimKrak parallel_app(deck, partitioned->partition, machine,
                                     engine, partitioned->stats, options);
  double parallel_wall = 0.0;
  const simapp::SimKrakResult parallel =
      timed_run(parallel_app, &parallel_wall);

  // The scaling datapoint is only meaningful if the engines agree; a
  // mismatch is a determinism bug, not a slow run. Makespan, per-rank
  // breakdowns, traffic, and fault stats must all replay bit-exactly.
  bool identical =
      serial.total_time == parallel.total_time &&
      serial.totals.compute == parallel.totals.compute &&
      serial.traffic.point_to_point_messages ==
          parallel.traffic.point_to_point_messages &&
      serial.traffic.point_to_point_bytes ==
          parallel.traffic.point_to_point_bytes &&
      serial.fault_stats.injections == parallel.fault_stats.injections &&
      serial.fault_stats.fault_delay_seconds ==
          parallel.fault_stats.fault_delay_seconds &&
      serial.failures.size() == parallel.failures.size() &&
      serial.rank_breakdown.size() == parallel.rank_breakdown.size();
  for (std::size_t r = 0; identical && r < serial.rank_breakdown.size(); ++r) {
    identical = serial.rank_breakdown[r].total_seconds() ==
                parallel.rank_breakdown[r].total_seconds();
  }
  util::check(identical,
              "parallel simulation diverged from the single-thread oracle");

  obs::Json replay = core::replay_to_json(std::move(name), parallel);
  core::attach_parallel_scaling(replay, threads, serial_wall, parallel_wall,
                                parallel.coordinator_seconds);
  std::cout << "parallel scaling (" << ranks << " ranks, " << threads
            << " threads): serial " << serial_wall << " s, parallel "
            << parallel_wall << " s, coordinator "
            << parallel.coordinator_seconds << " s\n";
  return replay;
}

obs::Json build_report(const Options& options) {
  std::vector<obs::Json> campaigns;
  std::vector<obs::Json> replays;

  // Resilience policy shared by every campaign (docs/RESILIENCE.md);
  // the journal label is set per campaign so one journal file serves
  // both tables without aliasing scenarios that share a configuration.
  core::CampaignPolicy policy;
  policy.max_attempts = options.max_attempts;
  policy.quarantine_after = options.quarantine_after;
  policy.backoff_initial_seconds = options.retry_backoff;
  policy.scenario_deadline_seconds = options.scenario_deadline;
  policy.campaign_deadline_seconds = options.campaign_deadline;
  std::unique_ptr<core::CampaignJournal> journal;
  if (!options.journal.empty()) {
    journal = std::make_unique<core::CampaignJournal>(options.journal);
    const core::CampaignJournal::Recovery& recovery = journal->recovery();
    if (!options.resume && recovery.records > 0) {
      throw util::KrakError(
          "journal '" + options.journal + "' already holds " +
          std::to_string(recovery.records) +
          " record(s); pass --resume to replay it, or point --journal at a"
          " fresh path");
    }
    if (options.resume) {
      std::cout << "journal: recovered " << recovery.records
                << " record(s), " << recovery.completed
                << " scenario(s) done, " << recovery.quarantined
                << " quarantined";
      if (recovery.torn_tail) {
        std::cout << "; torn tail truncated (" << recovery.dropped_bytes
                  << " bytes)";
      }
      std::cout << "\n";
    }
    policy.journal = journal.get();
  }
  const auto policy_for = [&policy](std::string label) {
    core::CampaignPolicy labeled = policy;
    labeled.label = std::move(label);
    return labeled;
  };

  core::ValidationConfig config;
  if (!options.faults.empty()) {
    config.faults = fault::load_fault_plan(options.faults);
  }
  // --threads also widens the partitioner's speculative parallel
  // paths, which are bit-identical at every width, so campaign values
  // never depend on it. Campaign simulations stay on the single-thread
  // oracle (ValidationConfig::sim_threads keeps its default): Table
  // 5/6 scenarios top out at 512 ranks, where epoch synchronization
  // costs more than the smaller per-shard heaps buy back — the sharded
  // engine is for the >= 10k-rank scaling replays, whose shard counts
  // are pinned per scenario so the BENCH artifacts stay comparable
  // across machines and across PRs.
  const auto threads = static_cast<std::int32_t>(
      options.threads != 0
          ? options.threads
          : std::max(1u, std::thread::hardware_concurrency()));
  config.partition_threads = threads;

  if (options.quick) {
    // Small-deck-only model: calibration at {8, 32, 128} takes a couple
    // of seconds instead of the medium deck's minutes.
    const mesh::InputDeck small =
        mesh::make_standard_deck(mesh::DeckSize::kSmall);
    const simapp::ComputationCostEngine engine;
    const network::MachineConfig machine = network::make_es45_qsnet();
    const core::KrakModel model(
        core::calibrate_from_input(engine, small, {8, 32, 128}), machine);

    std::vector<core::CampaignRun> mesh_specific;
    for (std::int32_t pes : {8, 16}) {
      mesh_specific.push_back(
          {mesh::DeckSize::kSmall, pes, core::CampaignRun::Flavor::kMeshSpecific});
    }
    std::vector<core::CampaignRun> general;
    for (std::int32_t pes : {16, 32}) {
      general.push_back({mesh::DeckSize::kSmall, pes,
                         core::CampaignRun::Flavor::kGeneralHomogeneous});
    }
    campaigns.push_back(core::campaign_to_json(
        "table5_quick",
        core::run_validation_campaign(model, engine, mesh_specific, config,
                                      options.threads,
                                      policy_for("table5_quick"))));
    campaigns.push_back(core::campaign_to_json(
        "table6_quick",
        core::run_validation_campaign(model, engine, general, config,
                                      options.threads,
                                      policy_for("table6_quick"))));
    replays.push_back(core::replay_to_json(
        "small_8pe", run_replay(small, 8, machine, engine,
                                /*iterations=*/2)));
    replays.push_back(run_parallel_scaling(small, /*ranks=*/128,
                                           "small_128pe_parallel", machine,
                                           engine, /*threads=*/4,
                                           config.partition_threads));
    // CI-scale cut of the full mode's large_100k scenario: the same
    // synthetic generator and full stack (hierarchical network +
    // shared-NIC contention), ~20k ranks instead of ~100k, so the
    // perf-smoke gate exercises the sharded-NIC path on every PR.
    replays.push_back(run_parallel_scaling(
        mesh::make_synthetic_deck(mesh::paper_synthetic_spec(1024, 128)),
        /*ranks=*/20480, "synthetic_20k_parallel", machine, engine,
        /*threads=*/8, config.partition_threads,
        partition::PartitionMethod::kRcb, /*full_stack=*/true));
  } else {
    const krakbench::Environment& env = krakbench::environment();
    campaigns.push_back(core::campaign_to_json(
        "table5_meshspecific",
        core::run_validation_campaign(env.model, env.engine,
                                      core::table5_runs(), config,
                                      options.threads,
                                      policy_for("table5_meshspecific"))));
    campaigns.push_back(core::campaign_to_json(
        "table6_general",
        core::run_validation_campaign(env.model, env.engine,
                                      core::table6_runs(), config,
                                      options.threads,
                                      policy_for("table6_general"))));
    replays.push_back(core::replay_to_json(
        "medium_64pe",
        run_replay(mesh::make_standard_deck(mesh::DeckSize::kMedium), 64,
                   env.machine, env.engine, /*iterations=*/3)));
    replays.push_back(run_parallel_scaling(
        mesh::make_standard_deck(mesh::DeckSize::kMedium), /*ranks=*/10240,
        "medium_10240pe_parallel", env.machine, env.engine, /*threads=*/8,
        config.partition_threads));

    // Strong-scaling validation sweep far past Table 5/6's 512-PE
    // ceiling: the large deck at P in {1024, 2048, 4096} against the
    // general homogeneous model. The reference machine tops out at
    // 1024 PEs, so the sweep runs on a widened copy — same per-node
    // shape, more nodes — with the model rebuilt around it (the cost
    // table is machine-independent). Measurements use the sharded
    // engine at 8 threads, which is bit-identical to the oracle.
    network::MachineConfig scaled_machine = env.machine;
    scaled_machine.nodes = 4096 / scaled_machine.pes_per_node;
    const core::KrakModel scaled_model(env.model.cost_table(),
                                       scaled_machine);
    core::ValidationConfig scaling_config = config;
    scaling_config.sim_threads = 8;
    std::vector<core::CampaignRun> scaling_runs;
    for (std::int32_t pes : {1024, 2048, 4096}) {
      scaling_runs.push_back({mesh::DeckSize::kLarge, pes,
                              core::CampaignRun::Flavor::kGeneralHomogeneous});
    }
    campaigns.push_back(core::campaign_to_json(
        "strong_scaling",
        core::run_validation_campaign(scaled_model, env.engine, scaling_runs,
                                      scaling_config, options.threads,
                                      policy_for("strong_scaling"))));

    // The headline scenario of docs/PERFORMANCE.md's "The 100k-rank
    // regime": a 524,288-cell synthetic deck spread over 102,400 ranks
    // with the full stack on (hierarchical network + shared-NIC
    // contention), replayed serial-vs-8-shards with the identity check
    // above pinning makespan, per-rank breakdowns, traffic, and fault
    // stats to the oracle.
    replays.push_back(run_parallel_scaling(
        mesh::make_synthetic_deck(mesh::paper_synthetic_spec(2048, 256)),
        /*ranks=*/102400, "large_100k", env.machine, env.engine,
        /*threads=*/8, config.partition_threads,
        partition::PartitionMethod::kRcb, /*full_stack=*/true));
    // Double it: the serial oracle's event heap grows past any cache
    // level while the per-shard heaps stay an eighth of it, so the
    // sharded engine's lead should widen, not collapse, with scale —
    // this datapoint and large_100k pin the curve's direction.
    replays.push_back(run_parallel_scaling(
        mesh::make_synthetic_deck(mesh::paper_synthetic_spec(2048, 512)),
        /*ranks=*/204800, "large_200k", env.machine, env.engine,
        /*threads=*/8, config.partition_threads,
        partition::PartitionMethod::kRcb, /*full_stack=*/true));
  }

  return core::make_bench_report(
      options.quick ? "krak_bench_quick" : "krak_bench", options.quick,
      core::detect_bench_environment(), std::move(campaigns),
      std::move(replays), obs::global_registry().snapshot());
}

/// Total scenario failures recorded across every campaign.
std::size_t count_failures(const obs::Json& report) {
  std::size_t failures = 0;
  for (const obs::Json& campaign : report.find("campaigns")->as_array()) {
    if (const obs::Json* list = campaign.find("failures")) {
      failures += list->size();
    }
  }
  return failures;
}

// Console digest of an already-validated report, so the fields below
// are guaranteed present.
void print_summary(const obs::Json& report) {
  for (const obs::Json& campaign : report.find("campaigns")->as_array()) {
    std::cout << "campaign " << campaign.find("name")->as_string() << ": "
              << campaign.find("runs")->as_array().size() << " runs, wall "
              << campaign.find("wall_seconds")->as_double()
              << " s, utilization "
              << campaign.find("thread_utilization")->as_double()
              << ", worst |error| "
              << campaign.find("worst_abs_error")->as_double() << "\n";
    if (const obs::Json* list = campaign.find("failures")) {
      for (const obs::Json& failure : list->as_array()) {
        std::cout << "  FAILED " << failure.find("scenario")->as_string()
                  << ": " << failure.find("error")->as_string() << "\n";
      }
    }
  }
  for (const obs::Json& replay : report.find("replays")->as_array()) {
    const obs::Json& phases = *replay.find("phases");
    std::cout << "replay " << replay.find("name")->as_string() << ": "
              << replay.find("ranks")->as_double() << " ranks, makespan "
              << replay.find("makespan_s")->as_double() << " s (compute "
              << phases.find("compute_s")->as_double() << ", p2p "
              << phases.find("p2p_s")->as_double() << ", collective "
              << phases.find("collective_s")->as_double() << ")\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);
  if (!options.validate.empty()) return validate_file(options.validate);
  if (!options.partition_store.empty()) {
    // Attach before anything partitions (calibration included), so a
    // warm store satisfies every configuration of the run.
    core::PartitionCache::global().set_store(
        std::make_shared<core::PartitionStore>(options.partition_store));
  }

  std::cout << "krak_bench: generating " << options.out
            << (options.quick ? " (quick mode)" : "") << "\n";
  obs::Json report;
  try {
    report = build_report(options);
  } catch (const std::exception& error) {
    std::cerr << "krak_bench: " << error.what() << "\n";
    return 1;
  }

  const std::vector<std::string> violations =
      obs::validate_bench_report(report);
  if (!violations.empty()) {
    for (const std::string& violation : violations) {
      std::cerr << "self-validation: " << violation << "\n";
    }
    std::cerr << "krak_bench: generated report violates "
              << obs::kBenchSchemaId << "; refusing to write\n";
    return 1;
  }

  // Atomic publish (temp + flush + rename): a crash — or a SIGKILL from
  // the crash-recovery CI job — can never leave a truncated report
  // under the real name for a downstream gate to parse.
  try {
    util::atomic_write_file(options.out, report.dump(2) + "\n");
  } catch (const std::exception& error) {
    std::cerr << "krak_bench: cannot write " << options.out << ": "
              << error.what() << "\n";
    return 1;
  }

  print_summary(report);
  const std::size_t failures = count_failures(report);
  std::cout << "krak_bench: wrote " << options.out << " ("
            << obs::kBenchSchemaId << ")\n";
  if (!options.compare.empty() &&
      run_compare_gate(report, options.compare, /*factor=*/1.5) != 0) {
    return 1;
  }
  if (failures > 0) {
    // The partial report above is still schema-valid and on disk; the
    // non-zero exit is the signal that some scenarios never measured.
    std::cerr << "krak_bench: " << failures
              << " campaign scenario(s) failed; see the report's"
                 " \"failures\" section\n";
    return 1;
  }
  return 0;
}
