// Regenerates Table 1: "Summary of Krak activities by phase" — the
// action and synchronization-point count of each of the 15 phases, as
// actually executed by SimKrak (traffic cross-checked against a traced
// iteration).

#include <iostream>

#include "common.hpp"
#include "mesh/deck.hpp"
#include "partition/partition.hpp"
#include "simapp/phases.hpp"
#include "simapp/simkrak.hpp"
#include "util/table.hpp"

int main() {
  using namespace krak;
  krakbench::print_header("Table 1: Krak activities by phase",
                          "Table 1 (Section 2.2)");

  util::TextTable table({"Phase", "Action", "Sync Points"});
  table.set_alignment({util::Align::kRight, util::Align::kLeft,
                       util::Align::kRight});
  std::int32_t total_syncs = 0;
  for (const simapp::PhaseSpec& phase : simapp::iteration_phases()) {
    table.add_row({std::to_string(phase.number),
                   std::string(simapp::phase_action_name(phase.action)),
                   std::to_string(phase.sync_points())});
    total_syncs += phase.sync_points();
  }
  std::cout << table;
  std::cout << "Total sync points per iteration: " << total_syncs
            << " (paper: 22)\n";

  // Cross-check by running one traced SimKrak iteration.
  const auto& env = krakbench::environment();
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 16, partition::PartitionMethod::kMultilevel, 1);
  const simapp::SimKrak app(deck, part, env.machine, env.engine, {});
  const simapp::SimKrakResult result = app.run();
  std::cout << "\nTraced iteration on 16 PEs (small deck):\n";
  std::cout << "  allreduces observed: " << result.traffic.allreduces
            << " (expected 22)\n";
  std::cout << "  broadcasts observed: " << result.traffic.broadcasts
            << " (expected 6: 3 of 4 B + 3 of 8 B)\n";
  std::cout << "  gathers observed:    " << result.traffic.gathers
            << " (expected 1)\n";
  const bool ok = result.traffic.allreduces == 22 &&
                  result.traffic.broadcasts == 6 && result.traffic.gathers == 1;
  std::cout << (ok ? "MATCH\n" : "MISMATCH\n");
  return ok ? 0 : 1;
}
