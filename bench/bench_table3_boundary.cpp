// Regenerates Table 3: the boundary-exchange example of Figure 4 — a
// processor boundary of 3 HE-gas, 2 aluminum, 3 foam, and 2 aluminum
// faces. Message counts and sizes must match the paper's table exactly:
//   H.E. Gas:        2 x 48 B, 4 x 36 B
//   Aluminum (both): 2 x 84 B, 4 x 48 B
//   Foam:            2 x 60 B, 4 x 36 B
//   All:             6 x 120 B

#include <iostream>
#include <vector>

#include "common.hpp"
#include "mesh/deck.hpp"
#include "partition/partition.hpp"
#include "partition/stats.hpp"
#include "simapp/phases.hpp"
#include "util/table.hpp"

namespace {

using namespace krak;

/// The Figure 4 deck: two columns (one per processor) and ten rows of
/// stacked materials along the shared boundary.
mesh::InputDeck make_figure4_deck() {
  mesh::Grid grid(2, 10);
  std::vector<mesh::Material> materials(20);
  for (std::int32_t j = 0; j < 10; ++j) {
    mesh::Material m = mesh::Material::kAluminumOuter;
    if (j < 3) {
      m = mesh::Material::kHEGas;
    } else if (j < 5) {
      m = mesh::Material::kAluminumInner;
    } else if (j < 8) {
      m = mesh::Material::kFoam;
    }
    for (std::int32_t i = 0; i < 2; ++i) {
      materials[static_cast<std::size_t>(grid.cell_at(i, j))] = m;
    }
  }
  return mesh::InputDeck("figure4", grid, std::move(materials),
                         mesh::Point{0.0, 4.0});
}

}  // namespace

int main() {
  krakbench::print_header("Table 3: boundary exchange example (Figure 4)",
                          "Table 3 + Figure 4 (Section 4.1)");

  const mesh::InputDeck deck = make_figure4_deck();
  std::vector<partition::PeId> assignment(20);
  for (std::int32_t j = 0; j < 10; ++j) {
    assignment[static_cast<std::size_t>(j * 2)] = 0;
    assignment[static_cast<std::size_t>(j * 2 + 1)] = 1;
  }
  const partition::Partition part(2, std::move(assignment));
  const partition::PartitionStats stats(deck, part);
  const partition::NeighborBoundary& boundary =
      stats.subdomain(0).neighbors.front();

  util::TextTable table(
      {"Material", "Msg. Count", "Size of Each Msg (bytes)", "Paper"});
  table.set_alignment({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight});

  const std::array<std::string, mesh::kExchangeGroupCount> paper_aug = {
      "48", "84", "60"};
  const std::array<std::string, mesh::kExchangeGroupCount> paper_base = {
      "36", "48", "36"};
  bool all_match = true;
  for (std::size_t g = 0; g < mesh::kExchangeGroupCount; ++g) {
    const double faces = static_cast<double>(boundary.faces_per_group[g]);
    const double nodes =
        static_cast<double>(boundary.multi_material_nodes_per_group[g]);
    const double augmented =
        simapp::kBoundaryBytesPerFace * (faces + nodes);
    const double base = simapp::kBoundaryBytesPerFace * faces;
    table.add_row({std::string(mesh::exchange_group_name(g)),
                   std::to_string(simapp::kBoundaryAugmentedMessages),
                   util::format_double(augmented, 0), paper_aug[g]});
    table.add_row({"", std::to_string(simapp::kBoundaryMessagesPerStep -
                                      simapp::kBoundaryAugmentedMessages),
                   util::format_double(base, 0), paper_base[g]});
    all_match = all_match &&
                util::format_double(augmented, 0) == paper_aug[g] &&
                util::format_double(base, 0) == paper_base[g];
  }
  const double final_bytes =
      simapp::kBoundaryBytesPerFace * static_cast<double>(boundary.total_faces);
  table.add_row({"All", std::to_string(simapp::kBoundaryMessagesPerStep),
                 util::format_double(final_bytes, 0), "120"});
  all_match = all_match && final_bytes == 120.0;

  std::cout << table;
  std::cout << "\nMulti-material ghost nodes on the boundary: "
            << boundary.multi_material_ghost_nodes
            << " (one per material junction)\n";
  std::cout << (all_match ? "MATCH: all message sizes reproduce Table 3\n"
                          : "MISMATCH against Table 3\n");
  return all_match ? 0 : 1;
}
