// Ablation: model-driven partitioning. The paper's introduction
// motivates using the model to evaluate "alterations to the
// application, such as the data-partitioning algorithms". This bench
// closes that loop — and lands on a sharp, model-explained result:
//
//   1. cell-balanced multilevel: the critical path is the all-HE-gas
//      processors (the model charges HE ~1.6x in material-dependent
//      phases);
//   2. cost-aware multilevel (the model's calibrated per-cell costs as
//      vertex weights) balances the per-iteration SUM of compute, but
//      Krak synchronizes at EVERY phase (Table 1's 22 sync points) —
//      the cell-heavy processors now lose the material-independent
//      phases exactly as much as the HE balancing wins the dependent
//      ones, so measured time does not improve;
//   3. material-aware partitioning gives every processor the global
//      material mix — balancing every phase simultaneously (a
//      multi-constraint balance) — and wins measurably.

#include <iostream>

#include "common.hpp"
#include "partition/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace krak;

/// Sum over phases of the max-over-PEs model time: the phase-
/// synchronized computation critical path (Equation 3).
double synced_computation(const core::KrakModel& model,
                          const partition::PartitionStats& stats) {
  return model.predict_mesh_specific(stats).computation;
}

}  // namespace

int main() {
  krakbench::print_header(
      "Ablation: cell-balanced vs. cost-aware vs. material-aware partitioning",
      "Section 1's model-driven-alteration use case");
  const auto& env = krakbench::environment();
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kMedium);

  // Per-material weights from the CALIBRATED model: summed per-cell
  // cost over all 15 phases at the working subgrid scale.
  const double scale_cells = 1600.0;
  std::array<double, mesh::kMaterialCount> weights{};
  for (std::size_t m = 0; m < mesh::kMaterialCount; ++m) {
    for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
      weights[m] += env.model.cost_table().per_cell(
          phase, mesh::material_from_index(m), scale_cells);
    }
  }

  bool material_aware_wins = true;
  for (std::int32_t pes : {64, 128}) {
    std::cout << pes << " processors:\n";
    util::TextTable table({"Partitioner", "Measured (ms)",
                           "Synced comp (ms)", "Max cells/PE"});
    table.set_alignment({util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight});
    double measured_plain = 0.0;
    double measured_material = 0.0;
    for (int variant = 0; variant < 3; ++variant) {
      partition::Partition part =
          (variant == 0)
              ? partition::partition_deck(
                    deck, pes, partition::PartitionMethod::kMultilevel, 1)
              : (variant == 1)
                    ? partition::partition_cost_aware(deck, pes, weights, 1)
                    : partition::partition_deck(
                          deck, pes,
                          partition::PartitionMethod::kMaterialAware, 1);
      const partition::PartitionStats stats(deck, part);
      const double measured =
          simapp::SimKrak(deck, part, env.machine, env.engine, {})
              .run()
              .time_per_iteration;
      if (variant == 0) measured_plain = measured;
      if (variant == 2) measured_material = measured;
      const char* names[] = {"cell-balanced", "cost-aware (scalar)",
                             "material-aware"};
      table.add_row({names[variant], util::format_double(measured * 1e3, 2),
                     util::format_double(
                         synced_computation(env.model, stats) * 1e3, 2),
                     std::to_string(stats.max_cells_per_pe())});
    }
    std::cout << table;
    const double gain = (measured_plain - measured_material) / measured_plain;
    std::cout << "Measured gain of material-aware over cell-balanced: "
              << util::format_percent(gain) << "\n\n";
    material_aware_wins = material_aware_wins && gain > 0.05;
  }
  std::cout
      << "The scalar cost-aware weights cannot beat the per-phase barriers\n"
         "(a processor light on HE gas but heavy on cells loses the\n"
         "material-independent phases), while the material-aware partition\n"
         "balances every phase at once. This mirrors Metis's move from\n"
         "single- to multi-constraint partitioning — and the model\n"
         "predicted all of it without running the application.\n";
  std::cout << (material_aware_wins ? "SHAPE MATCH\n" : "SHAPE MISMATCH\n");
  return material_aware_wins ? 0 : 1;
}
