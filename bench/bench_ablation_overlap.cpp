// Ablation: the cost of ignoring message overlap. Equations (5)-(7)
// serialize every point-to-point message of a processor; the real
// application (and SimKrak) overlaps asynchronous sends to different
// neighbors. This bench isolates communication (compute scaled to ~0)
// and compares the simulated communication time per iteration against
// the serialized model, quantifying the over-prediction the paper
// acknowledges ("does not account for overlapping of messages").

#include <iostream>

#include "common.hpp"
#include "core/comm_model.hpp"
#include "network/collectives.hpp"
#include "partition/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace krak;
  krakbench::print_header(
      "Ablation: serialized (Eq. 5-7) vs. overlapped point-to-point",
      "Section 4's stated approximation");
  const auto& env = krakbench::environment();

  // An engine whose computation is ~free isolates communication.
  simapp::ComputationCostEngine comm_only;
  comm_only.set_compute_speedup(1e9);
  comm_only.set_noise_sigma(0.0);

  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kMedium);
  util::TextTable table({"PEs", "Sim comm (ms)", "Model comm (ms)",
                         "Model p2p (ms)", "Over-prediction"});
  for (std::int32_t pes : {16, 64, 128, 256, 512}) {
    const partition::Partition part = partition::partition_deck(
        deck, pes, partition::PartitionMethod::kMultilevel, 1);
    const partition::PartitionStats stats(deck, part);
    const double simulated =
        simapp::SimKrak(deck, part, env.machine, comm_only, {})
            .run()
            .time_per_iteration;

    const core::PointToPointBreakdown p2p =
        core::max_point_to_point(env.machine.network, stats);
    const network::CollectiveModel collectives(env.machine.network);
    const double model_comm =
        p2p.total() + collectives.iteration_collectives(pes);

    table.add_row({std::to_string(pes),
                   util::format_double(simulated * 1e3, 3),
                   util::format_double(model_comm * 1e3, 3),
                   util::format_double(p2p.total() * 1e3, 3),
                   util::format_double(model_comm / simulated, 2) + "x"});
  }
  std::cout << table;
  std::cout << "\nThe serialized model over-predicts pure communication;"
               " in full-iteration validation the\neffect is diluted by"
               " computation, which is why the paper can ignore overlap"
               " and still\nvalidate within a few percent.\n";
  return 0;
}
