// Google-benchmark microbenchmarks of the simulator's hot path
// (docs/PERFORMANCE.md): the slab-backed event queue, the
// open-addressing mailbox, schedule construction (replay vs. the
// per-iteration rebuild it replaced), and the end-to-end event loop.
// CI's perf-smoke job runs this with --benchmark_min_time=0.05 as a
// does-it-still-run canary; run it bare for stable numbers.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "network/machine.hpp"
#include "sim/event_queue.hpp"
#include "sim/mailbox.hpp"
#include "simapp/simkrak.hpp"

namespace {

using namespace krak;

// Heap churn at a realistic queue depth: a sliding window of pending
// events where every fire schedules a successor, exercising the
// sift-up/sift-down paths and the pooled slab with zero allocation in
// steady state.
void BM_EventQueueChurn(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    queue.reserve(depth + 1);
    for (std::size_t i = 0; i < depth; ++i) {
      queue.schedule(static_cast<double>(i),
                     sim::SimEvent::step(static_cast<std::int32_t>(i)));
    }
    std::size_t remaining = 4 * depth;
    const sim::EventRunStats stats = queue.run([&](const sim::SimEvent& e) {
      if (remaining > 0) {
        --remaining;
        queue.schedule(queue.now() + 16.0, sim::SimEvent::step(e.rank));
      }
    });
    benchmark::DoNotOptimize(stats.fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(5 * state.range(0)));
}
BENCHMARK(BM_EventQueueChurn)->Arg(1 << 10)->Arg(1 << 14)
    ->Unit(benchmark::kMicrosecond);

// The Krak exchange pattern against the mailbox: a fixed set of
// (peer, tag) keys hit every iteration, half the pops finding their
// message pending and half coming back empty.
void BM_MailboxPushPop(benchmark::State& state) {
  const std::int32_t peers = 8;
  const std::int32_t tags = 24;  // ~ tags of one boundary-exchange phase
  for (auto _ : state) {
    sim::Mailbox mailbox;
    double arrival = 0.0;
    for (std::int32_t round = 0; round < 64; ++round) {
      for (std::int32_t peer = 0; peer < peers; ++peer) {
        for (std::int32_t tag = 0; tag < tags; ++tag) {
          mailbox.push(peer, tag, static_cast<double>(round));
          if ((tag & 1) != 0) {
            benchmark::DoNotOptimize(mailbox.try_pop(peer, tag, &arrival));
          }
        }
      }
    }
    benchmark::DoNotOptimize(mailbox.probes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          peers * tags);
}
BENCHMARK(BM_MailboxPushPop)->Unit(benchmark::kMicrosecond);

struct HotLoopEnv {
  simapp::ComputationCostEngine engine;
  network::MachineConfig machine = network::make_es45_qsnet();
};

const HotLoopEnv& hot_loop_env() {
  static const HotLoopEnv env;
  return env;
}

simapp::SimKrakOptions hot_loop_options(bool replay) {
  simapp::SimKrakOptions options;
  options.iterations = 3;
  options.replay_schedules = replay;
  return options;
}

// Schedule construction alone: template replay vs. the per-iteration
// rebuild it replaced. Both produce bit-identical op streams (the
// SimKrakReplay golden tests); this measures the construction saving.
void BM_ScheduleBuild(benchmark::State& state) {
  const HotLoopEnv& env = hot_loop_env();
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 64, partition::PartitionMethod::kMultilevel, 1);
  const simapp::SimKrak app(deck, part, env.machine, env.engine,
                            hot_loop_options(state.range(0) != 0));
  for (auto _ : state) {
    // Construction (including schedule building) plus the run; the
    // contrast between range(0)=0 and 1 isolates the builder.
    benchmark::DoNotOptimize(app.run());
  }
}
BENCHMARK(BM_ScheduleBuild)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// End-to-end hot loop: the full simulated Krak iteration at the event
// engine's steady state, items = events drained per second.
void BM_SimHotLoop(benchmark::State& state) {
  const HotLoopEnv& env = hot_loop_env();
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const auto pes = static_cast<std::int32_t>(state.range(0));
  const partition::Partition part = partition::partition_deck(
      deck, pes, partition::PartitionMethod::kMultilevel, 1);
  const simapp::SimKrak app(deck, part, env.machine, env.engine,
                            hot_loop_options(true));
  std::size_t events = 0;
  for (auto _ : state) {
    const simapp::SimKrakResult result = app.run();
    events += result.events_processed;
    benchmark::DoNotOptimize(result.total_time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimHotLoop)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// The hierarchical-network hot loop: every isend costs through the
// devirtualized HierarchicalNetwork installed on the simulator instead
// of the machine-level model. This is the datapoint guarding the
// PairCost devirtualization — before it, each send paid two
// std::function dispatches on the hot path.
void BM_SimHotLoopHierarchical(benchmark::State& state) {
  const HotLoopEnv& env = hot_loop_env();
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const auto pes = static_cast<std::int32_t>(state.range(0));
  const partition::Partition part = partition::partition_deck(
      deck, pes, partition::PartitionMethod::kMultilevel, 1);
  simapp::SimKrakOptions options = hot_loop_options(true);
  options.hierarchical_network = true;
  const simapp::SimKrak app(deck, part, env.machine, env.engine, options);
  std::size_t events = 0;
  for (auto _ : state) {
    const simapp::SimKrakResult result = app.run();
    events += result.events_processed;
    benchmark::DoNotOptimize(result.total_time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimHotLoopHierarchical)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// The conservative parallel engine against the single-thread oracle on
// the same deck: range(0) is SimConfig::threads. Results are
// bit-identical across the sweep (the determinism suite asserts it);
// this measures the epoch-barrier overhead and the win once shards
// carry enough events per window.
void BM_SimHotLoopParallel(benchmark::State& state) {
  const HotLoopEnv& env = hot_loop_env();
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 128, partition::PartitionMethod::kMultilevel, 1);
  simapp::SimKrakOptions options = hot_loop_options(true);
  options.sim_threads = static_cast<std::int32_t>(state.range(0));
  const simapp::SimKrak app(deck, part, env.machine, env.engine, options);
  std::size_t events = 0;
  for (auto _ : state) {
    const simapp::SimKrakResult result = app.run();
    events += result.events_processed;
    benchmark::DoNotOptimize(result.total_time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimHotLoopParallel)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
