// Regenerates Figure 1: an example irregular partitioning of the 3,200
// cell (small) deck over 16 processors, with material-layer boundaries.
// Rendered as ASCII art (one character per 1-2 cells) plus partition
// quality statistics; also dumps a PPM image to bench_out/.

#include <fstream>
#include <iostream>

#include "common.hpp"
#include "mesh/deck.hpp"
#include "partition/partition.hpp"
#include "partition/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace krak;

char pe_glyph(partition::PeId pe) {
  constexpr const char* kGlyphs =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  return kGlyphs[static_cast<std::size_t>(pe) % 62];
}

void write_ppm(const std::string& path, const mesh::InputDeck& deck,
               const partition::Partition& part) {
  const mesh::Grid& grid = deck.grid();
  std::ofstream out(path);
  out << "P3\n" << grid.nx() << " " << grid.ny() << "\n255\n";
  for (std::int32_t j = grid.ny() - 1; j >= 0; --j) {
    for (std::int32_t i = 0; i < grid.nx(); ++i) {
      const partition::PeId pe = part.pe_of(grid.cell_at(i, j));
      // A simple distinguishable palette from the PE id.
      const int r = (pe * 97 + 31) % 256;
      const int g = (pe * 57 + 101) % 256;
      const int b = (pe * 151 + 7) % 256;
      out << r << " " << g << " " << b << " ";
    }
    out << "\n";
  }
}

}  // namespace

int main() {
  krakbench::print_header(
      "Figure 1: example partitioning of 3,200 cells on 16 processors",
      "Figure 1 (Section 2)");

  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 16, partition::PartitionMethod::kMultilevel, 1);
  const mesh::Grid& grid = deck.grid();

  // ASCII rendering: subgrid ids as glyphs, '|' at material boundaries.
  std::cout << "Processor subgrids (80 x 40 cells; '|' marks a material "
               "layer boundary):\n\n";
  for (std::int32_t j = grid.ny() - 1; j >= 0; --j) {
    std::string line;
    for (std::int32_t i = 0; i < grid.nx(); ++i) {
      const mesh::CellId cell = grid.cell_at(i, j);
      const bool material_boundary =
          i + 1 < grid.nx() &&
          deck.material_of(cell) != deck.material_of(grid.cell_at(i + 1, j));
      line += pe_glyph(part.pe_of(cell));
      if (material_boundary) line += '|';
    }
    std::cout << line << "\n";
  }

  const partition::Graph graph = partition::build_dual_graph(grid);
  const partition::PartitionQuality quality =
      partition::evaluate_partition(graph, part);
  const partition::PartitionStats stats(deck, part);

  util::TextTable table({"Metric", "Value"});
  table.set_alignment({util::Align::kLeft, util::Align::kRight});
  table.add_row({"cells", std::to_string(grid.num_cells())});
  table.add_row({"processors", "16"});
  table.add_row({"min cells/PE", std::to_string(quality.min_cells)});
  table.add_row({"max cells/PE", std::to_string(quality.max_cells)});
  table.add_row({"imbalance", util::format_double(quality.imbalance, 3)});
  table.add_row({"edge cut (faces)", std::to_string(quality.edge_cut)});
  table.add_row(
      {"mean neighbors/PE", util::format_double(quality.mean_neighbors, 2)});
  table.add_row({"max neighbors/PE", std::to_string(quality.max_neighbors)});
  std::cout << "\n" << table;

  // Varying per-PE material mixes: the hallmark of irregular
  // partitioning the paper calls out in Section 2.
  std::int32_t mixed_subgrids = 0;
  for (const partition::SubdomainInfo& sub : stats.subdomains()) {
    std::int32_t materials = 0;
    for (std::int64_t n : sub.cells_per_material) {
      if (n > 0) ++materials;
    }
    if (materials > 1) ++mixed_subgrids;
  }
  std::cout << "Subgrids containing more than one material: "
            << mixed_subgrids << " of 16\n";

  const std::string ppm = krakbench::output_dir() + "/fig1_partition.ppm";
  write_ppm(ppm, deck, part);
  std::cout << "PPM image written to " << ppm << "\n";
  return 0;
}
