// Supplementary analysis: the point-to-point message-size distribution
// across the strong-scaling sweep. Section 5.2 explains the
// heterogeneous model's failure through "the small size of these
// messages at large scale: the latency suffered by each message becomes
// significant" — this bench makes that distribution explicit.

#include <iostream>

#include "common.hpp"
#include "partition/partition.hpp"
#include "partition/stats.hpp"
#include "simapp/trace.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace krak;
  krakbench::print_header(
      "Message-size distribution across the strong-scaling sweep",
      "Section 5.2's latency-dominance argument");
  const auto& env = krakbench::environment();
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kMedium);

  util::TextTable table({"PEs", "Messages/iter", "Total KiB", "Mean bytes",
                         "<=120 B share", "Latency share of Tmsg"});
  util::CsvWriter csv(krakbench::output_dir() + "/msg_distribution.csv");
  csv.write_header({"pes", "messages", "total_bytes", "mean_bytes",
                    "small_fraction"});
  for (std::int32_t pes : {16, 64, 128, 256, 512, 1024}) {
    const partition::Partition part = partition::partition_deck(
        deck, pes, partition::PartitionMethod::kMultilevel, 1);
    const partition::PartitionStats stats(deck, part);
    const simapp::MessageInventory inventory =
        simapp::compute_message_inventory(stats);

    const double mean_bytes = inventory.mean_message_bytes();
    const double latency_share =
        env.machine.network.latency(mean_bytes) /
        env.machine.network.message_time(mean_bytes);
    table.add_row(
        {std::to_string(pes), std::to_string(inventory.total_messages()),
         util::format_double(inventory.total_bytes() / 1024.0, 1),
         util::format_double(mean_bytes, 0),
         util::format_percent(inventory.fraction_at_most(120.0)),
         util::format_percent(latency_share)});
    csv.write_row(std::vector<double>{
        static_cast<double>(pes),
        static_cast<double>(inventory.total_messages()),
        inventory.total_bytes(), mean_bytes,
        inventory.fraction_at_most(120.0)});
  }
  std::cout << table;
  std::cout << "\nAs the processor count grows, messages multiply while"
               " shrinking toward the\nlatency floor — exactly the regime"
               " where charging a per-material message (the\nheterogeneous"
               " assumption) costs the model its accuracy.\nCSV: "
            << krakbench::output_dir() << "/msg_distribution.csv\n";
  return 0;
}
