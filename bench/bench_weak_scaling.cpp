// Extension experiment: weak scaling. The paper studies strong scaling
// only; here the problem grows with the machine (fixed cells per PE),
// the regime where collectives are the only growing cost. The general
// model predicts near-flat iteration time with a log(P) creep; SimKrak
// confirms it.

#include <cmath>
#include <iostream>

#include "common.hpp"
#include "partition/partition.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace krak;
  krakbench::print_header("Weak scaling (fixed cells per processor)",
                          "extension beyond the paper's strong-scaling study");
  const auto& env = krakbench::environment();

  bool shape_ok = true;
  for (const std::int64_t cells_per_pe : {400, 1600}) {
    std::cout << cells_per_pe << " cells per processor:\n";
    const std::vector<std::int32_t> pe_counts = {1, 4, 16, 64, 256, 1024};
    std::vector<double> measured(pe_counts.size(), 0.0);
    util::ThreadPool pool;
    pool.parallel_for(pe_counts.size(), [&](std::size_t i) {
      const std::int32_t pes = pe_counts[i];
      // A 2:1 rectangle with ~cells_per_pe * pes cells.
      const double target = static_cast<double>(cells_per_pe) * pes;
      const auto ny = static_cast<std::int32_t>(
          std::max(4.0, std::round(std::sqrt(target / 2.0))));
      const auto nx = static_cast<std::int32_t>(
          std::max(8.0, std::round(target / ny)));
      const mesh::InputDeck deck = mesh::make_cylindrical_deck(nx, ny);
      measured[i] = simapp::simulate_iteration_time(deck, pes, env.machine,
                                                    env.engine, 1);
    });

    util::TextTable table(
        {"PEs", "Cells", "Measured (ms)", "Predicted (ms)", "Error"});
    for (std::size_t i = 0; i < pe_counts.size(); ++i) {
      const std::int32_t pes = pe_counts[i];
      const std::int64_t cells = cells_per_pe * pes;
      const double predicted =
          env.model
              .predict_general(cells, pes,
                               core::GeneralModelMode::kHomogeneous)
              .total();
      const double error = (measured[i] - predicted) / measured[i];
      table.add_row({std::to_string(pes), std::to_string(cells),
                     util::format_double(measured[i] * 1e3, 2),
                     util::format_double(predicted * 1e3, 2),
                     util::format_percent(error)});
      if (pes >= 64) shape_ok = shape_ok && std::abs(error) < 0.15;
    }
    std::cout << table;
    // Weak-scaling shape: time grows far slower than the problem.
    const double growth = measured.back() / measured.front();
    std::cout << "Iteration-time growth over a 1024x problem increase: "
              << util::format_double(growth, 2) << "x (log-P collectives + "
              << "boundary growth only)\n\n";
    shape_ok = shape_ok && growth < 3.0;
  }
  std::cout << (shape_ok ? "SHAPE MATCH\n" : "SHAPE MISMATCH\n");
  return shape_ok ? 0 : 1;
}
