// Regenerates Table 2: the ratio of materials in the Krak general
// model — the heterogeneous row from the generated input decks against
// the paper's values, and the homogeneous row (100% per material by
// assumption).

#include <iostream>

#include "common.hpp"
#include "mesh/deck.hpp"
#include "util/table.hpp"

int main() {
  using namespace krak;
  krakbench::print_header("Table 2: ratio of materials in the general model",
                          "Table 2 (Section 3.2)");

  util::TextTable table({"Type", "H.E. Gas", "Aluminum (In)", "Foam",
                         "Aluminum (Out)"});
  table.set_alignment({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight});
  table.add_row({"Paper (hetero.)",
                 util::format_percent(mesh::kPaperMaterialRatios[0]),
                 util::format_percent(mesh::kPaperMaterialRatios[1]),
                 util::format_percent(mesh::kPaperMaterialRatios[2]),
                 util::format_percent(mesh::kPaperMaterialRatios[3])});
  table.add_rule();
  for (mesh::DeckSize size :
       {mesh::DeckSize::kSmall, mesh::DeckSize::kMedium,
        mesh::DeckSize::kLarge}) {
    const mesh::InputDeck deck = mesh::make_standard_deck(size);
    const auto ratios = deck.material_ratios();
    table.add_row({"Generated " + std::string(mesh::deck_size_name(size)),
                   util::format_percent(ratios[0]),
                   util::format_percent(ratios[1]),
                   util::format_percent(ratios[2]),
                   util::format_percent(ratios[3])});
  }
  table.add_rule();
  table.add_row({"Homogeneous", "100%", "100%", "100%", "100%"});
  std::cout << table;

  // The homogeneous assumption: for each material there exists a
  // subgrid composed exclusively of that material.
  std::cout << "\nHomogeneous mode assumes, per material, a subgrid made"
               " exclusively of that material\n(Section 3.2); the model"
               " charges each phase for the most expensive one.\n";
  return 0;
}
