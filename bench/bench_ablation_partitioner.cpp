// Ablation: the data-partitioning algorithm. The paper's introduction
// motivates performance models as a way to "quantitatively evaluate the
// potential performance benefit of alterations to the application, such
// as the data-partitioning algorithms". This bench compares the strip,
// RCB, and multilevel (Metis-like) partitioners on partition quality,
// SimKrak-measured iteration time, and model-predicted iteration time.

#include <iostream>

#include "common.hpp"
#include "partition/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace krak;
  krakbench::print_header("Ablation: partitioning algorithm comparison",
                          "Section 1 motivation + Section 2 (Metis)");
  const auto& env = krakbench::environment();
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kMedium);
  const partition::Graph graph = partition::build_dual_graph(deck.grid());

  for (std::int32_t pes : {64, 256}) {
    std::cout << "Medium problem on " << pes << " PEs:\n";
    util::TextTable table({"Method", "Edge cut", "Imbalance", "Max nbrs",
                           "Measured (ms)", "Predicted (ms)"});
    table.set_alignment({util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight});
    for (partition::PartitionMethod method :
         {partition::PartitionMethod::kStrip, partition::PartitionMethod::kRcb,
          partition::PartitionMethod::kMultilevel,
          partition::PartitionMethod::kMaterialAware}) {
      const partition::Partition part =
          partition::partition_deck(deck, pes, method, 1);
      const partition::PartitionQuality quality =
          partition::evaluate_partition(graph, part);
      const double measured =
          simapp::SimKrak(deck, part, env.machine, env.engine, {})
              .run()
              .time_per_iteration;
      const double predicted =
          env.model.predict_mesh_specific(deck, part).total();
      table.add_row({std::string(partition::partition_method_name(method)),
                     std::to_string(quality.edge_cut),
                     util::format_double(quality.imbalance, 3),
                     std::to_string(quality.max_neighbors),
                     util::format_double(measured * 1e3, 2),
                     util::format_double(predicted * 1e3, 2)});
    }
    std::cout << table << "\n";
  }
  std::cout << "The model ranks the partitioners the same way the"
               " simulated application does —\nthe paper's procurement"
               " use-case in miniature.\n";
  return 0;
}
