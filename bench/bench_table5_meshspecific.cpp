// Regenerates Table 5: validation of the mesh-specific (input-specific)
// model — small and medium problems on 16/64/128 processors, measured
// (SimKrak) vs. predicted, with the paper's signed error convention.
// Expected shape: large errors for the small problem near the knee of
// the per-cell cost curve, under 10% for the medium problem.

#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/campaign.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace krak;
  krakbench::print_header("Table 5: validation of the mesh-specific model",
                          "Table 5 (Section 5.1)");
  const auto& env = krakbench::environment();

  const core::CampaignSummary summary = core::run_validation_campaign(
      env.model, env.engine, core::table5_runs());
  std::cout << summary.to_string();

  util::CsvWriter csv(krakbench::output_dir() + "/table5_meshspecific.csv");
  csv.write_header({"problem", "pes", "measured_s", "predicted_s", "error"});
  double worst_small = 0.0;
  double worst_medium = 0.0;
  for (const core::ValidationPoint& point : summary.points) {
    csv.write_row({point.problem, std::to_string(point.pes),
                   std::to_string(point.measured),
                   std::to_string(point.predicted),
                   std::to_string(point.error())});
    // The small deck is 80x40 cells; problem names carry dimensions.
    auto& worst = (point.problem.find("80x40") != std::string::npos)
                      ? worst_small
                      : worst_medium;
    worst = std::max(worst, std::abs(point.error()));
  }
  std::cout << "\nPaper values for reference: small 16/64/128 errors"
               " -59.0% / +52.7% / -10.0%;\nmedium 16/64/128 errors +5.9% /"
               " -0.8% / +4.5%.\n";
  std::cout << "Shape check: worst small-problem error "
            << util::format_percent(worst_small)
            << " (knee regime, large); worst medium-problem error "
            << util::format_percent(worst_medium) << " (should be < 10%).\n";
  const bool shape_ok = worst_small > 0.15 && worst_medium < 0.10;
  std::cout << (shape_ok ? "SHAPE MATCH\n" : "SHAPE MISMATCH\n");
  return shape_ok ? 0 : 1;
}
