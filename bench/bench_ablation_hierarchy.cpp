// Ablation: flat vs. hierarchical network. The paper's Equation (4)
// charges a single Tmsg regardless of where the peers sit; the ES-45
// validation machine actually had 4 processors per node, so up to half
// of a small run's neighbors are reachable through shared memory. This
// bench re-measures SimKrak with a two-level (intra/inter-node) network
// and reports how much the flat assumption costs the model.

#include <iostream>

#include "common.hpp"
#include "partition/partition.hpp"
#include "util/table.hpp"

int main() {
  using namespace krak;
  krakbench::print_header(
      "Ablation: flat Tmsg vs. intra/inter-node hierarchical network",
      "Equation (4)'s single-level assumption");
  const auto& env = krakbench::environment();
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kMedium);

  // Comm-only engine amplifies the network difference (full iterations
  // are computation-dominated, hiding it).
  simapp::ComputationCostEngine comm_only;
  comm_only.set_compute_speedup(1e9);
  comm_only.set_noise_sigma(0.0);

  util::TextTable table({"PEs", "Full flat (ms)", "Full hier. (ms)",
                         "Comm-only flat (ms)", "Comm-only hier. (ms)",
                         "Comm diff"});
  for (std::int32_t pes : {16, 64, 128, 256, 512}) {
    const partition::Partition part = partition::partition_deck(
        deck, pes, partition::PartitionMethod::kMultilevel, 1);

    const auto run = [&](const simapp::ComputationCostEngine& engine,
                         bool hierarchical) {
      simapp::SimKrakOptions options;
      options.hierarchical_network = hierarchical;
      return simapp::SimKrak(deck, part, env.machine, engine, options)
          .run()
          .time_per_iteration;
    };
    const double flat = run(env.engine, false);
    const double hier = run(env.engine, true);
    const double comm_flat = run(comm_only, false);
    const double comm_hier = run(comm_only, true);
    table.add_row({std::to_string(pes), util::format_double(flat * 1e3, 2),
                   util::format_double(hier * 1e3, 2),
                   util::format_double(comm_flat * 1e3, 3),
                   util::format_double(comm_hier * 1e3, 3),
                   util::format_percent((comm_flat - comm_hier) / comm_flat)});
  }
  std::cout << table;
  std::cout << "\nWith block placement, few neighbor pairs of an irregular"
               " partition land on the same\n4-way node, and collectives"
               " still cross the interconnect - so even the pure\n"
               "communication difference stays small and a full iteration"
               " hides it entirely.\nThis is why the paper's single-level"
               " Equation (4) loses nothing.\n";
  return 0;
}
