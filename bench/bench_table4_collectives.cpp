// Regenerates Table 4: collective communication operations per
// iteration — counts and sizes, fixed regardless of problem size and
// processor count — plus the Equation (8)-(10) model costs.

#include <iostream>

#include "common.hpp"
#include "mesh/deck.hpp"
#include "network/collectives.hpp"
#include "partition/partition.hpp"
#include "simapp/phases.hpp"
#include "simapp/simkrak.hpp"
#include "util/table.hpp"

int main() {
  using namespace krak;
  krakbench::print_header(
      "Table 4: collective communication operations per iteration",
      "Table 4 + Equations (8)-(10) (Section 4.3)");

  const simapp::DerivedCollectiveCounts derived =
      simapp::derive_collective_counts();
  util::TextTable table({"Type", "Count", "Size (bytes)", "Paper count"});
  table.set_alignment({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight});
  table.add_row({"MPI_Bcast()", std::to_string(derived.bcast_4b), "4", "3"});
  table.add_row({"MPI_Bcast()", std::to_string(derived.bcast_8b), "8", "3"});
  table.add_row(
      {"MPI_Allreduce()", std::to_string(derived.allreduce_4b), "4", "9"});
  table.add_row(
      {"MPI_Allreduce()", std::to_string(derived.allreduce_8b), "8", "13"});
  table.add_row({"MPI_Gather()", std::to_string(derived.gather_32b), "32", "1"});
  std::cout << table;

  // Invariance check: identical counts on two very different
  // configurations, as the paper states.
  const auto& env = krakbench::environment();
  bool invariant = true;
  for (const auto& [size, pes] :
       std::vector<std::pair<mesh::DeckSize, std::int32_t>>{
           {mesh::DeckSize::kSmall, 8}, {mesh::DeckSize::kMedium, 64}}) {
    const mesh::InputDeck deck = mesh::make_standard_deck(size);
    const partition::Partition part = partition::partition_deck(
        deck, pes, partition::PartitionMethod::kMultilevel, 1);
    const auto traffic =
        simapp::SimKrak(deck, part, env.machine, env.engine, {}).run().traffic;
    std::cout << "\n" << mesh::deck_size_name(size) << " deck on " << pes
              << " PEs: " << traffic.broadcasts << " bcasts, "
              << traffic.allreduces << " allreduces, " << traffic.gathers
              << " gathers";
    invariant = invariant && traffic.broadcasts == 6 &&
                traffic.allreduces == 22 && traffic.gathers == 1;
  }
  std::cout << "\n\nCollective model costs on the ES-45/QsNet machine:\n";
  const network::CollectiveModel model(env.machine.network);
  util::TextTable costs({"PEs", "T_Broadcast", "T_Allreduce", "T_Gather"});
  for (std::int32_t pes : {16, 64, 128, 256, 512, 1024}) {
    costs.add_row({std::to_string(pes),
                   util::format_us(model.iteration_broadcast(pes), 1),
                   util::format_us(model.iteration_allreduce(pes), 1),
                   util::format_us(model.iteration_gather(pes), 1)});
  }
  std::cout << costs;
  std::cout << (invariant ? "MATCH: counts fixed across configurations\n"
                          : "MISMATCH\n");
  return invariant ? 0 : 1;
}
