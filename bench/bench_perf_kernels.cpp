// Google-benchmark microbenchmarks of the library's computational
// kernels: partitioning, boundary-statistics extraction, model
// evaluation, and the discrete-event simulator. These quantify the
// paper's claim that the general model enables "rapid model evaluation"
// compared with partition-and-simulate.

#include <benchmark/benchmark.h>

#include "common.hpp"
#include "hydro/solver.hpp"
#include "obs/metrics.hpp"
#include "partition/stats.hpp"

namespace {

using namespace krak;

void BM_PartitionMultilevel(benchmark::State& state) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const auto pes = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::partition_deck(
        deck, pes, partition::PartitionMethod::kMultilevel, 1));
  }
  state.SetItemsProcessed(state.iterations() * deck.grid().num_cells());
}
BENCHMARK(BM_PartitionMultilevel)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_PartitionRcb(benchmark::State& state) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kMedium);
  const auto pes = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        partition::partition_deck(deck, pes, partition::PartitionMethod::kRcb));
  }
  state.SetItemsProcessed(state.iterations() * deck.grid().num_cells());
}
BENCHMARK(BM_PartitionRcb)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_PartitionStats(benchmark::State& state) {
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 64, partition::PartitionMethod::kMultilevel, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::PartitionStats(deck, part));
  }
}
BENCHMARK(BM_PartitionStats)->Unit(benchmark::kMillisecond);

void BM_GeneralModelPredict(benchmark::State& state) {
  const auto& env = krakbench::environment();
  std::int32_t pes = 1;
  for (auto _ : state) {
    pes = (pes % 1024) + 1;
    benchmark::DoNotOptimize(
        env.model.predict_general(819200, pes,
                                  core::GeneralModelMode::kHomogeneous));
  }
  // The paper's point: general-model evaluation is microseconds, so
  // whole machine-design sweeps are interactive.
}
BENCHMARK(BM_GeneralModelPredict);

void BM_MeshSpecificPredict(benchmark::State& state) {
  const auto& env = krakbench::environment();
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const partition::Partition part = partition::partition_deck(
      deck, 64, partition::PartitionMethod::kMultilevel, 1);
  const partition::PartitionStats stats(deck, part);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.model.predict_mesh_specific(stats));
  }
}
BENCHMARK(BM_MeshSpecificPredict);

void BM_SimKrakIteration(benchmark::State& state) {
  const auto& env = krakbench::environment();
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const auto pes = static_cast<std::int32_t>(state.range(0));
  const partition::Partition part = partition::partition_deck(
      deck, pes, partition::PartitionMethod::kMultilevel, 1);
  const simapp::SimKrak app(deck, part, env.machine, env.engine, {});
  std::size_t events = 0;
  for (auto _ : state) {
    const simapp::SimKrakResult result = app.run();
    events += result.events_processed;
    benchmark::DoNotOptimize(result.time_per_iteration);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimKrakIteration)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_CalibrationMethod2(benchmark::State& state) {
  const auto& env = krakbench::environment();
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::calibrate_from_input(env.engine, deck, {16, 64}));
  }
}
BENCHMARK(BM_CalibrationMethod2)->Unit(benchmark::kMillisecond);

// Threaded hydro step. NOTE: thread counts above the host's core count
// cannot speed anything up (this repository's CI host has one core);
// the benchmark then measures the fork/join overhead of the chunked
// loops, which determinism tests guarantee change no results.
void BM_HydroStep(benchmark::State& state) {
  const mesh::InputDeck deck = mesh::make_cylindrical_deck(512, 256);
  hydro::HydroState hydro_state(deck);
  hydro::HydroConfig config;
  config.threads = static_cast<std::int32_t>(state.range(0));
  config.enable_burn = false;
  hydro::HydroSolver solver(hydro_state, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.step());
  }
  state.SetItemsProcessed(state.iterations() * deck.grid().num_cells());
}
BENCHMARK(BM_HydroStep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Cost of one instrumented scope with recording live: a clock read on
// entry and exit plus the atomic accumulate.
void BM_ScopedTimerEnabled(benchmark::State& state) {
  obs::set_enabled(true);
  obs::Timer& timer = obs::global_registry().timer("bench.scoped_timer");
  for (auto _ : state) {
    obs::ScopedTimer scope(timer);
    benchmark::DoNotOptimize(&scope);
  }
  obs::set_enabled(true);
}
BENCHMARK(BM_ScopedTimerEnabled);

// The disabled path the acceptance criterion cares about: one relaxed
// atomic load, no clock read, no allocation. Should be indistinguishable
// from an empty loop iteration.
void BM_ScopedTimerDisabled(benchmark::State& state) {
  obs::Timer& timer = obs::global_registry().timer("bench.scoped_timer");
  obs::set_enabled(false);
  for (auto _ : state) {
    obs::ScopedTimer scope(timer);
    benchmark::DoNotOptimize(&scope);
  }
  obs::set_enabled(true);
}
BENCHMARK(BM_ScopedTimerDisabled);

// Reference: the SimKrak replay with instrumentation globally off —
// compare against BM_SimKrakIteration to confirm the simulator's
// run-level probes cost nothing measurable.
void BM_SimKrakIterationObsOff(benchmark::State& state) {
  const auto& env = krakbench::environment();
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kSmall);
  const auto pes = static_cast<std::int32_t>(state.range(0));
  const partition::Partition part = partition::partition_deck(
      deck, pes, partition::PartitionMethod::kMultilevel, 1);
  const simapp::SimKrak app(deck, part, env.machine, env.engine, {});
  obs::set_enabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(app.run().time_per_iteration);
  }
  obs::set_enabled(true);
}
BENCHMARK(BM_SimKrakIterationObsOff)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
