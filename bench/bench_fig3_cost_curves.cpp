// Regenerates Figure 3: per-cell computation time versus cells per
// processor for phases 1, 2 and 7, one curve per material — the
// log-log cost curves whose knee defeats the mesh-specific model.
// Prints a decade-sampled table of the measured (ground-truth) curves
// and the calibrated model's piecewise-linear reconstruction; full
// resolution goes to CSV.

#include <cmath>
#include <iostream>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace krak;
  krakbench::print_header(
      "Figure 3: per-cell computation time vs. cells per processor",
      "Figure 3 (Section 3.1), phases 1, 2, 7");

  const auto& env = krakbench::environment();
  util::CsvWriter csv(krakbench::output_dir() + "/fig3_cost_curves.csv");
  csv.write_header({"phase", "cells", "material", "truth_per_cell_s",
                    "model_per_cell_s"});

  for (std::int32_t phase : {1, 2, 7}) {
    std::cout << "Phase " << phase << ":\n";
    util::TextTable table({"Cells/PE", "HE Gas (truth)", "HE Gas (model)",
                           "Foam (truth)", "Foam (model)"});
    for (double cells = 1.0; cells <= 1e6; cells *= 10.0) {
      const auto n = static_cast<std::int64_t>(cells);
      const double he_truth =
          env.engine.per_cell_cost(phase, mesh::Material::kHEGas, n);
      const double he_model = env.model.cost_table().per_cell(
          phase, mesh::Material::kHEGas, cells);
      const double foam_truth =
          env.engine.per_cell_cost(phase, mesh::Material::kFoam, n);
      const double foam_model =
          env.model.cost_table().per_cell(phase, mesh::Material::kFoam, cells);
      table.add_row({util::format_double(cells, 0),
                     util::format_us(he_truth, 3), util::format_us(he_model, 3),
                     util::format_us(foam_truth, 3),
                     util::format_us(foam_model, 3)});
    }
    std::cout << table << "\n";

    // Dense CSV sweep for plotting (quarter-decade steps).
    for (double cells = 1.0; cells <= 1e6; cells *= std::pow(10.0, 0.25)) {
      const auto n = static_cast<std::int64_t>(std::llround(cells));
      for (mesh::Material m : mesh::all_materials()) {
        csv.write_row({std::to_string(phase), std::to_string(n),
                       std::string(mesh::material_short_name(m)),
                       std::to_string(env.engine.per_cell_cost(phase, m, n)),
                       std::to_string(env.model.cost_table().per_cell(
                           phase, m, static_cast<double>(n)))});
      }
    }
  }

  std::cout << "Shape check (paper): per-cell cost is flat for large"
               " subgrids and rises toward a\nconstant per-subgrid time as"
               " the subgrid shrinks; the knee sits near 10^2 cells.\nCSV: "
            << krakbench::output_dir() << "/fig3_cost_curves.csv\n";
  return 0;
}
