#include "common.hpp"

#include <filesystem>
#include <iostream>

namespace krakbench {

const std::vector<std::int32_t>& calibration_pe_counts() {
  static const std::vector<std::int32_t> kCounts = {8, 64, 512, 4096};
  return kCounts;
}

Environment::Environment()
    : machine(krak::network::make_es45_qsnet()),
      model(krak::core::calibrate_from_input(
                engine,
                krak::mesh::make_standard_deck(krak::mesh::DeckSize::kMedium),
                calibration_pe_counts()),
            machine) {}

const Environment& environment() {
  static const Environment instance;
  return instance;
}

void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "Reproduces: " << paper_ref << "\n";
  std::cout << "(Barker, Pakin, Kerbyson: \"A Performance Model of the Krak "
               "Hydrodynamics Application\", ICPP 2006)\n\n";
}

std::string output_dir() {
  const std::string dir = "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace krakbench
