// Regenerates Table 6: validation of the general model with a
// homogeneous material distribution — medium and large problems on
// 128/256/512 processors. Expected shape: single-digit errors, best at
// the largest scale (the paper reports within 3% at 512 PEs).

#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/campaign.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace krak;
  krakbench::print_header(
      "Table 6: validation of the general model (homogeneous)",
      "Table 6 (Section 5.2)");
  const auto& env = krakbench::environment();

  const core::CampaignSummary summary = core::run_validation_campaign(
      env.model, env.engine, core::table6_runs());
  std::cout << summary.to_string();

  util::CsvWriter csv(krakbench::output_dir() + "/table6_general.csv");
  csv.write_header({"problem", "pes", "measured_s", "predicted_s", "error"});
  double at512 = 0.0;
  for (const core::ValidationPoint& point : summary.points) {
    csv.write_row({point.problem, std::to_string(point.pes),
                   std::to_string(point.measured),
                   std::to_string(point.predicted),
                   std::to_string(point.error())});
    if (point.pes == 512) {
      at512 = std::max(at512, std::abs(point.error()));
    }
  }
  std::cout << "\nPaper values for reference: medium 128/256/512 errors"
               " -8.0% / -4.0% / +2.9%;\nlarge 128/256/512 errors -4.3% /"
               " -4.6% / -1.0%.\n";
  std::cout << "Shape check: worst error "
            << util::format_percent(summary.worst_abs_error)
            << "; worst at 512 PEs " << util::format_percent(at512) << ".\n";
  const bool shape_ok = summary.worst_abs_error < 0.12 && at512 < 0.08;
  std::cout << (shape_ok ? "SHAPE MATCH\n" : "SHAPE MISMATCH\n");
  return shape_ok ? 0 : 1;
}
