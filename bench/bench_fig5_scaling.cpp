// Regenerates Figure 5: general model validation across the full
// strong-scaling sweep — measured (SimKrak), homogeneous, and
// heterogeneous iteration times for the medium and large problems over
// P = 1..1024. Expected shape: heterogeneous tracks the measurement at
// small P and over-predicts at large P; homogeneous over-predicts at
// small P and converges onto the measurement at large P.

#include <iostream>
#include <vector>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace krak;
  krakbench::print_header(
      "Figure 5: general model validation (strong-scaling sweep)",
      "Figure 5 (Section 5.2)");
  const auto& env = krakbench::environment();
  const std::vector<std::int32_t> pe_counts = {1,  2,   4,   8,   16,  32,
                                               64, 128, 256, 512, 1024};

  util::CsvWriter csv(krakbench::output_dir() + "/fig5_scaling.csv");
  csv.write_header(
      {"problem", "pes", "measured_s", "homogeneous_s", "heterogeneous_s"});

  bool shape_ok = true;
  for (mesh::DeckSize size : {mesh::DeckSize::kMedium, mesh::DeckSize::kLarge}) {
    const mesh::InputDeck deck = mesh::make_standard_deck(size);
    std::cout << "Problem: " << mesh::deck_size_name(size) << " ("
              << deck.grid().num_cells() << " cells)\n";
    std::vector<double> measured(pe_counts.size(), 0.0);
    util::ThreadPool pool;
    pool.parallel_for(pe_counts.size(), [&](std::size_t i) {
      measured[i] = simapp::simulate_iteration_time(
          deck, pe_counts[i], env.machine, env.engine, /*seed=*/1);
    });

    util::TextTable table({"PEs", "Measured (ms)", "Homogeneous (ms)",
                           "Heterogeneous (ms)", "Homo err", "Hetero err"});
    for (std::size_t i = 0; i < pe_counts.size(); ++i) {
      const std::int32_t pes = pe_counts[i];
      const double homo =
          env.model
              .predict_general(deck.grid().num_cells(), pes,
                               core::GeneralModelMode::kHomogeneous)
              .total();
      const double het =
          env.model
              .predict_general(deck.grid().num_cells(), pes,
                               core::GeneralModelMode::kHeterogeneous)
              .total();
      table.add_row({std::to_string(pes),
                     util::format_double(measured[i] * 1e3, 1),
                     util::format_double(homo * 1e3, 1),
                     util::format_double(het * 1e3, 1),
                     util::format_percent((measured[i] - homo) / measured[i]),
                     util::format_percent((measured[i] - het) / measured[i])});
      csv.write_row({std::string(mesh::deck_size_name(size)),
                     std::to_string(pes), std::to_string(measured[i]),
                     std::to_string(homo), std::to_string(het)});
      if (pes == 1) {
        // Left edge of Figure 5: heterogeneous is the better fit.
        shape_ok = shape_ok &&
                   std::abs(het - measured[i]) < std::abs(homo - measured[i]);
      }
      if (pes == 512) {
        // Table 6 regime: homogeneous within a few percent.
        shape_ok = shape_ok && std::abs(homo - measured[i]) / measured[i] < 0.10;
      }
      if (i + 1 == pe_counts.size()) {
        // Right edge of the sweep: heterogeneous over-predicts once the
        // per-material subgrid shares shrink into the knee (the
        // divergence point scales with the problem size, exactly as in
        // the paper's two panels).
        shape_ok = shape_ok && het > measured[i] * 1.05;
      }
    }
    std::cout << table << "\n";
  }
  std::cout << "CSV: " << krakbench::output_dir() << "/fig5_scaling.csv\n";
  std::cout << (shape_ok
                    ? "SHAPE MATCH: hetero accurate at small P and "
                      "over-predicting at scale; homo accurate at scale\n"
                    : "SHAPE MISMATCH\n");
  return shape_ok ? 0 : 1;
}
