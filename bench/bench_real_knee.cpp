// Supplementary: the Figure 3 measurement campaign run on REAL code.
// The hydro mini-app (src/hydro) is timed with wall clocks at a ladder
// of subgrid sizes, one material at a time, exactly like the paper's
// contrived-grid calibration. The resulting per-cell cost curves are
// not flat in the subgrid size — on this lean solver the dominant
// effect is the cache hierarchy (cost rises with working-set size),
// while production Krak's per-phase fixed overheads dominate at small
// sizes — demonstrating on genuine measurements why T() needs its
// |Cells| argument. Results are wall-clock and thus machine-dependent;
// this bench is narrative, not pass/fail.

#include <iostream>

#include "common.hpp"
#include "hydro/measure.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace krak;
  krakbench::print_header(
      "Real-code per-cell cost curves (hydro mini-app, wall clock)",
      "Figure 3's methodology on real measurements");

  const std::vector<std::int64_t> sizes = {16,   64,    256,   1024,
                                           4096, 16384, 65536, 262144};
  util::CsvWriter csv(krakbench::output_dir() + "/real_knee.csv");
  csv.write_header({"material", "cells", "per_cell_total_s", "eos_s",
                    "forces_s", "integrate_s"});

  for (mesh::Material material :
       {mesh::Material::kHEGas, mesh::Material::kFoam}) {
    std::cout << "Material: " << mesh::material_name(material) << "\n";
    util::TextTable table({"Cells", "Total (ns/cell/step)", "EOS", "Forces",
                           "Integrate", "Energy"});
    for (std::int64_t cells : sizes) {
      const std::int64_t steps = cells <= 1024 ? 50 : 8;
      const hydro::HydroCostSample sample =
          hydro::measure_uniform_cost(material, cells, steps);
      const auto ns = [&](hydro::HydroPhase phase) {
        return util::format_double(
            sample.per_cell_seconds[static_cast<std::size_t>(phase)] * 1e9,
            1);
      };
      table.add_row({std::to_string(sample.cells),
                     util::format_double(
                         sample.total_per_cell_seconds() * 1e9, 1),
                     ns(hydro::HydroPhase::kEos),
                     ns(hydro::HydroPhase::kForces),
                     ns(hydro::HydroPhase::kIntegrate),
                     ns(hydro::HydroPhase::kEnergy)});
      csv.write_row(std::vector<double>{
          static_cast<double>(mesh::material_index(material)),
          static_cast<double>(sample.cells),
          sample.total_per_cell_seconds(),
          sample.per_cell_seconds[static_cast<std::size_t>(
              hydro::HydroPhase::kEos)],
          sample.per_cell_seconds[static_cast<std::size_t>(
              hydro::HydroPhase::kForces)],
          sample.per_cell_seconds[static_cast<std::size_t>(
              hydro::HydroPhase::kIntegrate)]});
    }
    std::cout << table << "\n";
  }
  std::cout << "CSV: " << krakbench::output_dir() << "/real_knee.csv\n";
  return 0;
}
