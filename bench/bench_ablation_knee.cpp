// Ablation: calibration sampling density vs. the knee error. The paper
// attributes the mesh-specific model's >50% errors to "the linear
// regression itself, or the linear interpolation between measured
// values in the cost curves". This bench re-validates the small problem
// with cost tables calibrated at increasingly dense subgrid-size
// ladders, showing the knee error shrink as the samples close in on the
// knee.

#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/calibration.hpp"
#include "util/table.hpp"

int main() {
  using namespace krak;
  krakbench::print_header(
      "Ablation: calibration sample density vs. knee error",
      "Section 5.1's diagnosis of the Table 5 errors");
  const auto& env = krakbench::environment();
  const mesh::InputDeck medium = mesh::make_standard_deck(mesh::DeckSize::kMedium);
  const mesh::InputDeck small = mesh::make_standard_deck(mesh::DeckSize::kSmall);

  struct Ladder {
    std::string name;
    std::vector<std::int32_t> pe_counts;  // medium-deck calibration runs
  };
  // Cells/PE on the medium deck: 204800 / P.
  const std::vector<Ladder> ladders = {
      {"coarse (2 sizes)", {64, 4096}},
      {"default (4 sizes)", {8, 64, 512, 4096}},
      {"dense (8 sizes)", {8, 32, 64, 128, 512, 1024, 2048, 4096}},
  };

  util::TextTable table({"Calibration ladder", "Err @16", "Err @64",
                         "Err @128", "Worst |err|"});
  table.set_alignment({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight});
  std::vector<double> worst_by_ladder;
  for (const Ladder& ladder : ladders) {
    const core::CostTable table_for_ladder =
        core::calibrate_from_input(env.engine, medium, ladder.pe_counts);
    const core::KrakModel model(table_for_ladder, env.machine);
    std::vector<std::string> cells = {ladder.name};
    double worst = 0.0;
    for (std::int32_t pes : {16, 64, 128}) {
      const core::ValidationPoint point =
          core::validate_mesh_specific(small, pes, model, env.engine);
      cells.push_back(util::format_percent(point.error()));
      worst = std::max(worst, std::abs(point.error()));
    }
    cells.push_back(util::format_percent(worst));
    table.add_row(cells);
    worst_by_ladder.push_back(worst);
  }
  std::cout << table;
  const bool improves = worst_by_ladder.back() < worst_by_ladder.front();
  std::cout << "\n"
            << (improves
                    ? "Denser sampling around the knee reduces the worst "
                      "error, confirming the paper's diagnosis.\n"
                    : "NOTE: denser sampling did not reduce the worst error "
                      "on this seed.\n");
  return 0;
}
